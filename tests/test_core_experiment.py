"""Tests for the throughput probe, experiment driver, and results."""

import math

import pytest

from repro.core.experiment import (
    BACKENDS,
    ExperimentConfig,
    make_store,
    run_experiment,
)
from repro.core.results import AgeSample, RunResult
from repro.core.throughput import measure, measure_read_throughput
from repro.core.workload import ConstantSize, WorkloadSpec, bulk_load
from repro.errors import ConfigError
from repro.rng import substream
from repro.units import KB, MB


class TestMeasure:
    def test_phase_result_throughput(self, file_store):
        with measure(file_store, "load") as phase:
            file_store.put("a", size=1 * MB)
            phase.add_bytes(1 * MB)
        result = phase.result
        assert result.logical_bytes == 1 * MB
        assert result.elapsed_s > 0
        assert result.mbps == pytest.approx(1 * MB / result.elapsed_s)

    def test_windows_cover_all_devices(self, file_store):
        # Metadata I/O happens on the meta-db devices; the window must
        # still see its time.
        with measure(file_store, "load") as phase:
            file_store.put("a", size=64 * KB)
            phase.add_bytes(64 * KB)
        meta_io = phase.result.window.total_time_s
        data_only = file_store.device.stats.busy_time_s
        assert meta_io > 0
        assert meta_io >= data_only * 0.99  # includes the object device

    def test_read_throughput_helper(self, file_store):
        spec = WorkloadSpec(sizes=ConstantSize(256 * KB),
                            target_occupancy=0.3)
        state = bulk_load(file_store, spec, substream(1, "w"))
        result = measure_read_throughput(file_store, state, 8,
                                         substream(1, "r"))
        assert result.logical_bytes == 8 * 256 * KB
        assert result.mbps > 0
        assert result.seeks > 0


class TestExperimentConfig:
    def test_backend_validation(self):
        with pytest.raises(ConfigError):
            ExperimentConfig(backend="oracle", sizes=ConstantSize(1 * MB))

    def test_ages_must_ascend(self):
        with pytest.raises(ConfigError):
            ExperimentConfig(backend="filesystem",
                             sizes=ConstantSize(1 * MB),
                             ages=(2.0, 1.0))

    def test_display_label(self):
        cfg = ExperimentConfig(backend="filesystem",
                               sizes=ConstantSize(10 * MB),
                               volume_bytes=2 * 1024 * MB,
                               occupancy=0.5)
        assert "filesystem" in cfg.display_label()
        assert "10M" in cfg.display_label()

    def test_make_store_all_backends(self):
        # make_store is the deprecated shim; it must still build every
        # registered backend (including the sharded composite).
        for backend in BACKENDS:
            cfg = ExperimentConfig(backend=backend,
                                   sizes=ConstantSize(1 * MB),
                                   volume_bytes=96 * MB)
            with pytest.warns(DeprecationWarning):
                store = make_store(cfg)
            assert store.name


class TestRunExperiment:
    @pytest.fixture(scope="class")
    def small_run(self):
        cfg = ExperimentConfig(
            backend="filesystem",
            sizes=ConstantSize(512 * KB),
            volume_bytes=64 * MB,
            occupancy=0.5,
            ages=(0.0, 1.0, 2.0),
            reads_per_sample=8,
            seed=3,
        )
        return run_experiment(cfg)

    def test_samples_at_every_age(self, small_run):
        assert [round(s.age) for s in small_run.samples] == [0, 1, 2]

    def test_age_zero_is_clean(self, small_run):
        first = small_run.samples[0]
        assert first.fragments_per_object == pytest.approx(1.0)
        assert first.write_mbps == small_run.bulk_load_write_mbps

    def test_throughputs_positive(self, small_run):
        for sample in small_run.samples:
            assert sample.read_mbps > 0
            assert sample.write_mbps > 0
            assert not math.isnan(sample.occupancy)

    def test_overwrite_counts_monotone(self, small_run):
        counts = [s.overwrites for s in small_run.samples]
        assert counts == sorted(counts)
        assert counts[0] == 0

    def test_deterministic(self):
        cfg = ExperimentConfig(
            backend="database",
            sizes=ConstantSize(512 * KB),
            volume_bytes=32 * MB,
            ages=(0.0, 1.0),
            reads_per_sample=4,
            seed=11,
        )
        a = run_experiment(cfg)
        b = run_experiment(cfg)
        assert [s.fragments_per_object for s in a.samples] == \
            [s.fragments_per_object for s in b.samples]
        assert [s.read_mbps for s in a.samples] == \
            [s.read_mbps for s in b.samples]

    def test_progress_callback(self):
        events = []
        cfg = ExperimentConfig(
            backend="filesystem",
            sizes=ConstantSize(1 * MB),
            volume_bytes=32 * MB,
            ages=(0.0,),
            reads_per_sample=2,
            seed=1,
        )
        run_experiment(cfg, progress=lambda phase, v: events.append(phase))
        assert "bulk-load" in events
        assert "sample" in events


class TestResults:
    def make_result(self):
        return RunResult(
            backend="filesystem",
            label="test",
            config={"seed": 1},
            samples=[
                AgeSample(age=0.0, fragments_per_object=1.0,
                          fragments_median=1.0, fragments_max=1,
                          read_mbps=10 * MB, write_mbps=12 * MB,
                          occupancy=0.5, overwrites=0),
                AgeSample(age=2.0, fragments_per_object=3.0,
                          fragments_median=2.0, fragments_max=9,
                          read_mbps=6 * MB, write_mbps=7 * MB,
                          occupancy=0.5, overwrites=200),
            ],
            bulk_load_write_mbps=12 * MB,
            objects_loaded=100,
            live_bytes=100 * MB,
        )

    def test_sample_at(self):
        result = self.make_result()
        assert result.sample_at(2.0).fragments_per_object == 3.0
        assert result.sample_at(1.9).age == 2.0
        with pytest.raises(KeyError):
            result.sample_at(5.0)

    def test_series(self):
        result = self.make_result()
        assert result.series("fragments_per_object") == \
            [(0.0, 1.0), (2.0, 3.0)]

    def test_round_trip_dict(self):
        result = self.make_result()
        clone = RunResult.from_dict(result.to_dict())
        assert clone.label == result.label
        assert clone.samples == result.samples
        assert clone.bulk_load_write_mbps == result.bulk_load_write_mbps

    def test_save_load(self, tmp_path):
        result = self.make_result()
        path = tmp_path / "run.json"
        result.save(path)
        clone = RunResult.load(path)
        assert clone.samples == result.samples

    def test_sample_row(self):
        row = self.make_result().samples[0].row()
        assert row["age"] == 0.0
        assert row["read MB/s"] == 10.0


class TestIndexKindAblation:
    def test_make_store_honours_index_kind(self):
        from repro.alloc.freelist import FreeExtentIndex
        from repro.alloc.naive import NaiveFreeExtentIndex
        from repro.backends import build_store

        base = dict(backend="filesystem", sizes=ConstantSize(64 * KB),
                    volume_bytes=64 * MB)
        tiered = build_store(ExperimentConfig(**base).resolved_spec())
        assert isinstance(tiered.fs.free_index, FreeExtentIndex)
        naive = build_store(
            ExperimentConfig(**base, index_kind="naive").resolved_spec())
        assert isinstance(naive.fs.free_index, NaiveFreeExtentIndex)

    def test_index_kind_validated(self):
        with pytest.raises(ConfigError):
            ExperimentConfig(backend="filesystem",
                             sizes=ConstantSize(64 * KB),
                             index_kind="bitmap")

    def test_index_kind_in_run_config(self):
        from repro.fs.filesystem import FsConfig

        config = ExperimentConfig(backend="filesystem",
                                  sizes=ConstantSize(64 * KB),
                                  index_kind="naive")
        assert config.to_dict()["index_kind"] == "naive"
        assert ExperimentConfig(
            backend="filesystem", sizes=ConstantSize(64 * KB),
        ).to_dict()["index_kind"] == "tiered"
        # Provenance follows the engine actually instantiated: an
        # fs_config-selected engine is recorded, and backends that never
        # touch the index record None rather than a misleading default.
        assert ExperimentConfig(
            backend="filesystem", sizes=ConstantSize(64 * KB),
            fs_config=FsConfig(index_kind="naive"),
        ).to_dict()["index_kind"] == "naive"
        assert ExperimentConfig(
            backend="database", sizes=ConstantSize(64 * KB),
        ).to_dict()["index_kind"] is None
