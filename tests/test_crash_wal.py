"""WAL kill-point matrix: ghost-record recovery under injected crashes.

The database analogue of ``test_crash_matrix.py``: replay a BLOB
put/replace/delete workload once per possible crash site — every data
write, every log append, every commit force, the host-side window
between the force and the ghost-cleaner hand-off, and every ghost
sweep — then assert the paper's deferred-free rule on the WAL side:

    **ghost-record recovery never resurrects uncommitted deletes** —
    pages ghosted by a delete whose commit was not durable at the crash
    stay allocated forever (the transaction rolled back; the row still
    exists), while ghost records whose force completed are replayed to
    the cleaner and deallocate normally.  At no kill point is an
    uncommitted delete's page free or cleaner-visible.
"""

import pytest

from crashsim import CrashClock, FaultyDevice, kill_point_matrix

from repro.db.database import DbConfig, SimDatabase
from repro.db.wal import GhostRecord, WriteAheadLog
from repro.disk.device import BlockDevice
from repro.disk.geometry import scaled_disk
from repro.errors import CrashPoint
from repro.units import KB, MB

#: Aggressive cleaner settings so ghost sweeps interleave the workload
#: (sweep kill points actually fire) and batched commits stay small.
CRASHY_DB_CONFIG = DbConfig(
    write_request=64 * KB,
    ghost_cleanup_interval_ops=2,
    ghost_max_pages_per_sweep=64,
    ghost_min_age_ops=2,
)


def build_db(clock: CrashClock) -> SimDatabase:
    data = FaultyDevice(scaled_disk(24 * MB), clock=clock)
    log = FaultyDevice(scaled_disk(4 * MB), clock=clock)
    db = SimDatabase(data, log, CRASHY_DB_CONFIG)
    db.wal.crash_hook = clock.hook      # force -> publish window
    db.ghost.crash_hook = clock.hook    # ghost-record sweep boundary
    return db


def workload(db: SimDatabase) -> None:
    ids = [db.put_blob(size=96 * KB) for _ in range(5)]
    # One multi-delete transaction: two ghost records, one force.
    db.delete_blob(ids[0], commit=False)
    db.delete_blob(ids[2], commit=False)
    db.commit()
    # Safe-write replacements (new blob + ghosted old, per commit).
    db.replace_blob(ids[1], size=64 * KB)
    db.replace_blob(ids[3], size=128 * KB)
    db.delete_blob(ids[4], commit=False)
    db.commit()


def recover_and_check(db: SimDatabase) -> None:
    """The assertions every kill point must pass."""
    gam = db.gam
    queued = db.ghost.queued_page_numbers()
    pending = db.wal.pending_ghosts
    # At crash time an uncommitted delete's pages are neither free nor
    # visible to the cleaner.
    for record in pending:
        for page in record.pages:
            assert gam.is_page_used(page), \
                f"page {page} of uncommitted delete {record.token} " \
                "was deallocated before its commit was durable"
            assert page not in queued, \
                f"page {page} reached the ghost cleaner before its " \
                "delete committed"
    replayable = db.wal.replayable_ghosts
    report = db.recover_after_crash()
    # Recovery replays exactly the durable-unpublished set and rolls
    # back exactly the pending set.
    assert report.replayed == replayable
    assert report.discarded == pending
    assert set(db.rolled_back_pages) == set(report.discarded_pages())
    # Drain the cleaner completely: durable ghost records deallocate ...
    db.ghost.drain()
    for page in report.replayed_pages():
        assert not gam.is_page_used(page), \
            f"replayed ghost page {page} never deallocated"
    # ... while rolled-back deletes never do (the resurrection check).
    for page in report.discarded_pages():
        assert gam.is_page_used(page), \
            f"rolled-back delete's page {page} was freed — recovery " \
            "resurrected an uncommitted delete"
    gam.check_invariants()


class TestWalKillMatrix:
    def test_every_kill_point_recovers(self):
        matrix = list(kill_point_matrix(build_db, workload))
        crashes = sum(1 for _, crashed, _ in matrix if crashed)
        assert crashes > 20, "matrix exercised too few crash sites"
        saw_pending = saw_replayable = False
        for k, crashed, db in matrix:
            db.wal.crash_hook = None
            db.ghost.crash_hook = None
            saw_pending = saw_pending or bool(db.wal.pending_ghosts)
            saw_replayable = (saw_replayable
                              or bool(db.wal.replayable_ghosts))
            recover_and_check(db)
            # The recovered database stays usable: allocate and commit.
            new_id = db.put_blob(size=64 * KB)
            assert db.blobs.exists(new_id)
            db.check_invariants()
        # The matrix must actually have caught both interesting states:
        # deletes pending at the crash, and the force->publish window.
        assert saw_pending, "no kill point landed before a commit force"
        assert saw_replayable, \
            "no kill point landed between force and publish"


class TestWalGhostSemantics:
    """Targeted checks of the WAL's ghost-record life cycle."""

    def make_wal(self, **kwargs) -> tuple[WriteAheadLog, list[list[int]]]:
        published: list[list[int]] = []
        wal = WriteAheadLog(BlockDevice(scaled_disk(4 * MB)),
                            on_publish=published.append, **kwargs)
        return wal, published

    def test_pages_reach_cleaner_only_at_commit(self):
        wal, published = self.make_wal()
        wal.log_ghost([3, 4, 5], token=7)
        assert published == []
        assert wal.pending_ghosts == (GhostRecord(7, (3, 4, 5)),)
        wal.commit()
        assert published == [[3, 4, 5]]
        assert wal.pending_ghosts == ()
        assert wal.replayable_ghosts == ()

    def test_ghost_record_costs_one_log_record(self):
        wal, _ = self.make_wal()
        before = wal.logged_bytes
        wal.log_ghost([1], token=1)
        assert wal.logged_bytes - before == WriteAheadLog.RECORD_BYTES
        assert wal.records == 1

    def test_crash_between_force_and_publish_replays(self):
        wal, published = self.make_wal()

        def boom(label: str) -> None:
            raise CrashPoint(label)

        wal.log_ghost([8, 9], token=2)
        wal.crash_hook = boom
        with pytest.raises(CrashPoint):
            wal.commit()
        # Forced but unpublished: durable, invisible to the cleaner.
        assert published == []
        assert wal.replayable_ghosts == (GhostRecord(2, (8, 9)),)
        wal.crash_hook = None
        report = wal.recover()
        assert report.replayed == (GhostRecord(2, (8, 9)),)
        assert report.discarded == ()
        assert published == [[8, 9]]

    def test_crash_before_force_discards(self):
        wal, published = self.make_wal(charge_io=False)
        wal.log_ghost([11], token=3)
        report = wal.recover()
        assert report.discarded == (GhostRecord(3, (11,)),)
        assert report.replayed == ()
        assert published == []
        # A later commit must not resurrect the rolled-back record.
        wal.log_operation()
        wal.commit()
        assert published == []
