"""Tests for page file, WAL, ghost cleaner, buffer pool, and heap."""

import pytest

from repro.db.bufferpool import BufferPool
from repro.db.gam import GamAllocator
from repro.db.ghost import GhostCleaner
from repro.db.heap import HeapTable
from repro.db.pagefile import PageFile, pages_to_extents
from repro.db.wal import WriteAheadLog
from repro.disk.device import BlockDevice
from repro.disk.geometry import scaled_disk
from repro.errors import ConfigError, RowNotFoundError
from repro.units import MB, PAGE_SIZE


# ----------------------------------------------------------------------
# Page file
# ----------------------------------------------------------------------
class TestPagesToExtents:
    def test_groups_consecutive(self):
        out = pages_to_extents([0, 1, 2, 7], base=0)
        assert [(e.start, e.length) for e in out] == [
            (0, 3 * PAGE_SIZE), (7 * PAGE_SIZE, PAGE_SIZE)
        ]

    def test_preserves_logical_order(self):
        out = pages_to_extents([7, 0, 1], base=0)
        assert [(e.start, e.length) for e in out] == [
            (7 * PAGE_SIZE, PAGE_SIZE), (0, 2 * PAGE_SIZE)
        ]

    def test_base_offset(self):
        out = pages_to_extents([0], base=1 * MB)
        assert out[0].start == 1 * MB

    def test_empty(self):
        assert pages_to_extents([], base=0) == []


class TestPageFile:
    def make(self):
        device = BlockDevice(scaled_disk(16 * MB))
        return PageFile(device, base=0, num_pages=1024), device

    def test_offsets(self):
        pf, _ = self.make()
        assert pf.page_offset(0) == 0
        assert pf.page_offset(10) == 10 * PAGE_SIZE

    def test_bounds(self):
        pf, _ = self.make()
        with pytest.raises(ConfigError):
            pf.page_offset(1024)

    def test_reads_batch_consecutive_pages(self):
        pf, device = self.make()
        pf.read_pages(list(range(64)))
        assert device.stats.seeks <= 1
        assert device.stats.read_bytes == 64 * PAGE_SIZE

    def test_scattered_pages_seek_per_run(self):
        pf, device = self.make()
        pf.read_pages([100, 300, 500])
        assert device.stats.seeks == 3

    def test_file_must_fit_device(self):
        device = BlockDevice(scaled_disk(1 * MB))
        with pytest.raises(ConfigError):
            PageFile(device, base=0, num_pages=1024)


# ----------------------------------------------------------------------
# WAL
# ----------------------------------------------------------------------
class TestWal:
    def make(self, bulk_logged=True):
        device = BlockDevice(scaled_disk(8 * MB))
        return WriteAheadLog(device, bulk_logged=bulk_logged), device

    def test_bulk_logged_skips_payload(self):
        wal, device = self.make(bulk_logged=True)
        wal.log_operation(payload_bytes=1 * MB)
        assert device.stats.write_bytes == WriteAheadLog.RECORD_BYTES

    def test_full_recovery_logs_payload(self):
        wal, device = self.make(bulk_logged=False)
        wal.log_operation(payload_bytes=1 * MB)
        assert device.stats.write_bytes == \
            WriteAheadLog.RECORD_BYTES + 1 * MB

    def test_commit_flushes_once(self):
        wal, device = self.make()
        for _ in range(5):
            wal.log_operation()
        requests_before = device.stats.requests
        wal.commit()
        assert device.stats.requests == requests_before + 1  # one flush
        assert wal.commits == 1

    def test_empty_commit_noop(self):
        wal, device = self.make()
        wal.commit()
        assert wal.commits == 0

    def test_log_wraps(self):
        wal, device = self.make()
        for _ in range(20000):
            wal.log_operation()
        assert wal.records == 20000  # no overflow error

    def test_payload_validation(self):
        wal, _ = self.make()
        with pytest.raises(ConfigError):
            wal.log_operation(payload_bytes=-1)


# ----------------------------------------------------------------------
# Ghost cleaner
# ----------------------------------------------------------------------
class TestGhostCleaner:
    def test_immediate_mode(self):
        gam = GamAllocator(8)
        ghost = GhostCleaner(gam, cleanup_interval_ops=0)
        pages = gam.alloc_pages(8)
        ghost.ghost_pages(pages)
        assert gam.free_page_count == 64

    def test_pages_unavailable_until_aged(self):
        gam = GamAllocator(8)
        ghost = GhostCleaner(gam, cleanup_interval_ops=1,
                             max_pages_per_sweep=None, min_age_ops=4)
        pages = gam.alloc_pages(8)
        ghost.ghost_pages(pages)
        for _ in range(3):
            ghost.on_operation()
        assert gam.free_page_count == 56  # still ghost
        ghost.on_operation()
        assert gam.free_page_count == 64  # aged out and swept

    def test_sweep_budget_trickles(self):
        gam = GamAllocator(8)
        ghost = GhostCleaner(gam, cleanup_interval_ops=1,
                             max_pages_per_sweep=2, min_age_ops=0)
        pages = gam.alloc_pages(8)
        ghost.ghost_pages(pages)
        ghost.on_operation()
        assert gam.free_page_count == 56 + 2
        ghost.on_operation()
        assert gam.free_page_count == 56 + 4

    def test_drain_frees_everything(self):
        gam = GamAllocator(8)
        ghost = GhostCleaner(gam, cleanup_interval_ops=10,
                             min_age_ops=100)
        ghost.ghost_pages(gam.alloc_pages(20))
        ghost.drain()
        assert gam.free_page_count == 64
        assert ghost.pending_pages == 0

    def test_fifo_order(self):
        gam = GamAllocator(8)
        ghost = GhostCleaner(gam, cleanup_interval_ops=1,
                             max_pages_per_sweep=1, min_age_ops=0)
        first = gam.alloc_page()
        second = gam.alloc_page()
        ghost.ghost_pages([second])
        ghost.ghost_pages([first])
        ghost.on_operation()
        # The first-ghosted page (second allocated) is freed first.
        assert not gam.is_page_used(second)
        assert gam.is_page_used(first)

    def test_counters(self):
        gam = GamAllocator(8)
        ghost = GhostCleaner(gam, cleanup_interval_ops=1, min_age_ops=0,
                             max_pages_per_sweep=None)
        ghost.ghost_pages(gam.alloc_pages(10))
        assert ghost.ghosted_pages == 10
        ghost.on_operation()
        assert ghost.cleaned_pages == 10


# ----------------------------------------------------------------------
# Buffer pool
# ----------------------------------------------------------------------
class TestBufferPool:
    def make(self, capacity=4):
        device = BlockDevice(scaled_disk(16 * MB))
        pf = PageFile(device, base=0, num_pages=1024)
        return BufferPool(pf, capacity_pages=capacity), device

    def test_hit_costs_nothing(self):
        pool, device = self.make()
        pool.access(1)
        io_after_miss = device.stats.total_bytes
        pool.access(1)
        assert device.stats.total_bytes == io_after_miss
        assert pool.hits == 1
        assert pool.misses == 1

    def test_miss_reads_page(self):
        pool, device = self.make()
        pool.access(7)
        assert device.stats.read_bytes == PAGE_SIZE

    def test_write_miss_skips_read(self):
        pool, device = self.make()
        pool.access(7, for_write=True)
        assert device.stats.read_bytes == 0

    def test_eviction_respects_capacity(self):
        pool, _ = self.make(capacity=4)
        for page in range(10):
            pool.access(page)
        assert len(pool) <= 4
        assert pool.evictions >= 6

    def test_dirty_eviction_writes_back(self):
        pool, device = self.make(capacity=2)
        pool.access(0, for_write=True)
        pool.access(1, for_write=True)
        writes_before = device.stats.write_bytes
        pool.access(2)  # must evict a dirty frame eventually
        pool.access(3)
        assert device.stats.write_bytes > writes_before

    def test_clock_gives_second_chance(self):
        pool, _ = self.make(capacity=2)
        pool.access(0)
        pool.access(1)
        pool.access(2)  # evicts 0 after clearing both ref bits
        assert 0 not in pool._frames
        pool.access(3)  # second chance: 1 (ref cleared) goes, 2 stays
        assert 2 in pool._frames
        assert 3 in pool._frames

    def test_flush_all(self):
        pool, device = self.make(capacity=8)
        for page in range(4):
            pool.access(page, for_write=True)
        pool.flush_all()
        assert device.stats.write_bytes >= 4 * PAGE_SIZE
        pool.flush_all()  # second flush writes nothing new
        assert device.stats.write_bytes == 4 * PAGE_SIZE

    def test_invalidate(self):
        pool, _ = self.make()
        pool.access(5, for_write=True)
        pool.invalidate(5)
        assert 5 not in pool._frames

    def test_hit_rate(self):
        pool, _ = self.make()
        pool.access(0)
        pool.access(0)
        pool.access(0)
        assert pool.hit_rate == pytest.approx(2 / 3)


# ----------------------------------------------------------------------
# Heap table
# ----------------------------------------------------------------------
class TestHeapTable:
    def make(self):
        device = BlockDevice(scaled_disk(16 * MB))
        pf = PageFile(device, base=0, num_pages=2048)
        gam = GamAllocator(256)
        pool = BufferPool(pf, capacity_pages=64)
        return HeapTable("t", gam, pool, rows_per_page=4), gam

    def test_insert_get(self):
        table, _ = self.make()
        table.insert("k", {"a": 1})
        assert table.get("k") == {"a": 1}
        assert table.contains("k")
        assert len(table) == 1

    def test_get_returns_copy(self):
        table, _ = self.make()
        table.insert("k", {"a": 1})
        row = table.get("k")
        row["a"] = 99
        assert table.get("k")["a"] == 1

    def test_duplicate_insert_rejected(self):
        table, _ = self.make()
        table.insert("k", {})
        with pytest.raises(ConfigError):
            table.insert("k", {})

    def test_update(self):
        table, _ = self.make()
        table.insert("k", {"a": 1, "b": 2})
        table.update("k", {"b": 3})
        assert table.get("k") == {"a": 1, "b": 3}

    def test_missing_rows(self):
        table, _ = self.make()
        with pytest.raises(RowNotFoundError):
            table.get("ghost")
        with pytest.raises(RowNotFoundError):
            table.update("ghost", {})
        with pytest.raises(RowNotFoundError):
            table.delete("ghost")

    def test_delete(self):
        table, _ = self.make()
        table.insert("k", {})
        table.delete("k")
        assert not table.contains("k")

    def test_rows_pack_into_pages(self):
        table, gam = self.make()
        for i in range(8):  # 4 rows/page -> 2 heap pages
            table.insert(f"k{i}", {})
        heap_pages = len(table._page_slots)
        assert heap_pages == 2

    def test_scan(self):
        table, _ = self.make()
        for i in range(10):
            table.insert(f"k{i}", {"i": i})
        rows = dict(table.scan())
        assert len(rows) == 10
        assert rows["k3"] == {"i": 3}

    def test_keys(self):
        table, _ = self.make()
        table.insert("a", {})
        table.insert("b", {})
        assert sorted(table.keys()) == ["a", "b"]
