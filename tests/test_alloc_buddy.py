"""Tests for the DTSS-style buddy allocator."""

import pytest

from repro.alloc.buddy import BuddyAllocator
from repro.errors import AllocationError, ConfigError, CorruptionError
from repro.units import KB, MB


@pytest.fixture
def buddy():
    return BuddyAllocator(1 * MB, min_block=4 * KB)


class TestConstruction:
    def test_requires_power_of_two_block_count(self):
        with pytest.raises(ConfigError):
            BuddyAllocator(3 * 4096, min_block=4096)

    def test_requires_power_of_two_min_block(self):
        with pytest.raises(ConfigError):
            BuddyAllocator(1 * MB, min_block=3000)

    def test_initially_all_free(self, buddy):
        assert buddy.total_free == 1 * MB
        assert buddy.allocated_blocks == 0


class TestAllocation:
    def test_rounds_to_power_of_two(self, buddy):
        ext = buddy.alloc(5 * KB)
        assert ext.length == 8 * KB

    def test_min_block_floor(self, buddy):
        assert buddy.alloc(1).length == 4 * KB

    def test_alignment(self, buddy):
        for _ in range(10):
            ext = buddy.alloc(8 * KB)
            assert ext.start % ext.length == 0

    def test_internal_waste(self, buddy):
        assert buddy.internal_waste(5 * KB) == 3 * KB
        assert buddy.internal_waste(8 * KB) == 0

    def test_exhaustion(self, buddy):
        for _ in range(256):
            buddy.alloc(4 * KB)
        with pytest.raises(AllocationError):
            buddy.alloc(4 * KB)

    def test_dtss_hard_limit(self):
        buddy = BuddyAllocator(1 * MB, min_block=4 * KB,
                               max_block=64 * KB)
        with pytest.raises(AllocationError):
            buddy.alloc(65 * KB)
        assert buddy.alloc(64 * KB).length == 64 * KB


class TestFree:
    def test_free_returns_space(self, buddy):
        ext = buddy.alloc(16 * KB)
        buddy.free(ext)
        assert buddy.total_free == 1 * MB

    def test_buddies_merge(self, buddy):
        a = buddy.alloc(4 * KB)
        b = buddy.alloc(4 * KB)
        buddy.free(a)
        buddy.free(b)
        # After both halves return, a full-size alloc must succeed.
        big = buddy.alloc(1 * MB)
        assert big.length == 1 * MB

    def test_double_free_rejected(self, buddy):
        ext = buddy.alloc(4 * KB)
        buddy.free(ext)
        with pytest.raises(CorruptionError):
            buddy.free(ext)

    def test_wrong_length_rejected(self, buddy):
        ext = buddy.alloc(8 * KB)
        from repro.alloc.extent import Extent

        with pytest.raises(CorruptionError):
            buddy.free(Extent(ext.start, 4 * KB))

    def test_foreign_extent_rejected(self, buddy):
        from repro.alloc.extent import Extent

        with pytest.raises(CorruptionError):
            buddy.free(Extent(12345 * 4096 % (1 * MB), 4 * KB))


class TestInvariants:
    def test_random_workload_conserves_space(self, buddy):
        import random

        rng = random.Random(7)
        live = []
        for _ in range(500):
            if live and rng.random() < 0.5:
                buddy.free(live.pop(rng.randrange(len(live))))
            else:
                try:
                    live.append(buddy.alloc(rng.choice(
                        [4 * KB, 8 * KB, 12 * KB, 64 * KB]
                    )))
                except AllocationError:
                    pass
            buddy.check_invariants()
        allocated = sum(e.length for e in live)
        assert allocated + buddy.total_free == 1 * MB

    def test_no_external_fragmentation_for_block_sizes(self, buddy):
        """The buddy discipline: after any alloc/free history, freeing
        everything always restores a maximal block — the predictability
        DTSS traded capacity for."""
        import random

        rng = random.Random(3)
        live = [buddy.alloc(rng.choice([4 * KB, 32 * KB]))
                for _ in range(8)]
        for ext in live:
            buddy.free(ext)
        assert buddy.alloc(1 * MB).length == 1 * MB
