"""Tests for table rendering and shape predicates."""

import pytest

from repro.analysis.compare import (
    check_between,
    check_faster,
    check_keeps_growing,
    check_levels_off,
    check_monotonic_increase,
    crossover_age,
    ratio,
)
from repro.analysis.tables import render_series_table, render_table


class TestTables:
    def test_render_basic(self):
        text = render_table("Title", ["a", "bb"], [[1, 2.5], [10, 0.25]])
        lines = text.splitlines()
        assert lines[0] == "Title"
        assert "a" in lines[2] and "bb" in lines[2]
        assert "2.50" in text and "0.25" in text

    def test_alignment(self):
        text = render_table("t", ["col"], [[1], [100], [10000]])
        rows = text.splitlines()[4:]
        assert len({len(r) for r in rows}) == 1  # same width

    def test_footer(self):
        text = render_table("t", ["a"], [[1]], footer="paper: ~2")
        assert text.endswith("paper: ~2")

    def test_series_table_unions_x(self):
        text = render_series_table(
            "t", "age",
            {"db": [(0, 1.0), (2, 3.0)], "fs": [(0, 1.0), (4, 2.0)]},
        )
        assert "db" in text and "fs" in text
        for x in ("0", "2", "4"):
            assert any(line.strip().startswith(x)
                       for line in text.splitlines())


class TestShapeChecks:
    def test_monotonic_pass(self):
        check = check_monotonic_increase(
            "m", [(0, 1.0), (1, 2.0), (2, 2.0), (3, 2.5)]
        )
        assert check.passed

    def test_monotonic_allows_slack(self):
        check = check_monotonic_increase(
            "m", [(0, 2.0), (1, 1.9)], slack=0.15
        )
        assert check.passed

    def test_monotonic_fails_on_big_dip(self):
        check = check_monotonic_increase(
            "m", [(0, 2.0), (1, 1.0)], slack=0.15
        )
        assert not check.passed

    def test_levels_off_asymptote(self):
        # Rapid early rise, flat tail (NTFS in Figure 2).
        series = [(x, min(5.0, 2.5 * x)) for x in range(11)]
        assert check_levels_off("fs", series).passed

    def test_levels_off_rejects_linear(self):
        series = [(x, float(x)) for x in range(11)]
        assert not check_levels_off("fs", series).passed

    def test_keeps_growing_linear(self):
        # SQL Server in Figure 2: almost linear, no asymptote.
        series = [(x, 3.5 * x + 1) for x in range(11)]
        assert check_keeps_growing("db", series).passed

    def test_keeps_growing_rejects_asymptote(self):
        series = [(x, min(5.0, 2.5 * x)) for x in range(11)]
        assert not check_keeps_growing("db", series).passed

    def test_too_few_points(self):
        assert not check_levels_off("x", [(0, 1.0)]).passed
        assert not check_keeps_growing("x", [(0, 1.0)]).passed

    def test_crossover(self):
        db = [(0.0, 10.0), (2.0, 8.0), (4.0, 5.0)]
        fs = [(0.0, 6.0), (2.0, 6.0), (4.0, 6.0)]
        assert crossover_age(db, fs) == 4.0
        assert crossover_age(fs, [(0.0, 1.0), (4.0, 1.0)]) is None

    def test_ratio(self):
        series = [(0.0, 10.0), (4.0, 5.0)]
        assert ratio(series, 4.0) == pytest.approx(0.5)

    def test_between(self):
        assert check_between("b", 4.2, 3.0, 5.0).passed
        assert not check_between("b", 6.0, 3.0, 5.0).passed

    def test_faster(self):
        assert check_faster("f", 17.7, 10.1, min_ratio=1.5).passed
        assert not check_faster("f", 10.0, 10.0, min_ratio=1.5).passed

    def test_str_form(self):
        check = check_between("level", 4.0, 3.0, 5.0)
        assert "PASS" in str(check)
        assert "level" in str(check)
