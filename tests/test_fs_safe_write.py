"""Tests for the safe-write protocol (Section 4 of the paper)."""

import pytest

from repro.errors import ConfigError
from repro.units import KB, MB


class TestSafeWriteSemantics:
    def test_replaces_content_atomically(self, content_fs):
        content_fs.create("obj")
        content_fs.append("obj", data=b"old " * 1024)
        content_fs.safe_write("obj", data=b"new " * 2048)
        assert content_fs.read("obj") == b"new " * 2048

    def test_no_temp_files_remain(self, quiet_fs):
        quiet_fs.create("obj")
        quiet_fs.append("obj", nbytes=64 * KB)
        quiet_fs.safe_write("obj", size=128 * KB)
        names = quiet_fs.list_files()
        assert names == ["obj"]

    def test_old_space_freed_after_commit(self, quiet_fs):
        quiet_fs.create("obj")
        quiet_fs.append("obj", nbytes=1 * MB)
        quiet_fs.safe_write("obj", size=1 * MB)
        quiet_fs.journal.commit()
        used = quiet_fs.data_capacity - quiet_fs.free_bytes
        slack = quiet_fs.metadata_traffic.outstanding_bytes
        assert used == 1 * MB + slack

    def test_size_change_supported(self, quiet_fs):
        quiet_fs.create("obj")
        quiet_fs.append("obj", nbytes=1 * MB)
        quiet_fs.safe_write("obj", size=256 * KB)
        assert quiet_fs.file_size("obj") == 256 * KB

    def test_write_request_size_controls_append_count(self, quiet_fs):
        quiet_fs.create("obj")
        quiet_fs.append("obj", nbytes=64 * KB)
        record_before = quiet_fs.table.lookup("obj").append_requests
        quiet_fs.safe_write("obj", size=512 * KB, write_request=64 * KB)
        tmp_requests = quiet_fs.table.lookup("obj").append_requests
        assert tmp_requests == 8  # 512K / 64K appends on the temp file

    def test_validation(self, quiet_fs):
        quiet_fs.create("obj")
        with pytest.raises(ConfigError):
            quiet_fs.safe_write("obj")
        with pytest.raises(ConfigError):
            quiet_fs.safe_write("obj", size=10, data=b"ab")
        with pytest.raises(ConfigError):
            quiet_fs.safe_write("obj", size=0)

    def test_charges_flush(self, quiet_fs):
        quiet_fs.create("obj")
        quiet_fs.append("obj", nbytes=64 * KB)
        before = quiet_fs.device.stats.write_time_s
        quiet_fs.safe_write("obj", size=64 * KB)
        # At minimum the temp file's fsync forced a rotation.
        assert quiet_fs.device.stats.write_time_s - before >= \
            quiet_fs.device.geometry.rotation_s


class _Crash(Exception):
    pass


class TestCrashAtomicity:
    """Fault injection: a crash at any point of the safe write leaves
    the old version fully readable — the property the protocol buys."""

    @pytest.mark.parametrize("label", [
        "safe_write:after_data",
        "safe_write:after_fsync",
    ])
    def test_crash_preserves_old_version(self, content_fs, label):
        content_fs.create("obj")
        old = b"OLD!" * (16 * KB // 4)
        content_fs.append("obj", data=old)

        def crash_hook(point: str) -> None:
            if point == label:
                raise _Crash(point)

        content_fs.crash_hook = crash_hook
        with pytest.raises(_Crash):
            content_fs.safe_write("obj", data=b"NEW!" * (16 * KB // 4))
        content_fs.crash_hook = None
        assert content_fs.read("obj") == old

    def test_crash_after_rename_exposes_new_version(self, content_fs):
        # Sanity check of the hook mechanism: without a crash the new
        # version is visible.
        content_fs.create("obj")
        content_fs.append("obj", data=b"OLD!" * 4096)
        content_fs.safe_write("obj", data=b"NEW!" * 4096)
        assert content_fs.read("obj") == b"NEW!" * 4096
