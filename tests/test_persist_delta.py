"""Tests for the binary delta codec (repro.persist.delta).

Round trips over representative payload shapes, byte determinism,
wrong-parent and torn-blob rejection, and op-stream validation.  The
codec underpins delta checkpoint chains (``test_persist_snapshot.py``
covers the chain layer; ``test_crash_matrix.py`` the crash behaviour).
"""

import random
import struct
import zlib

import pytest

from repro.errors import ConfigError, SnapshotError
from repro.persist import DELTA_BLOCK, apply_delta, encode_delta
from repro.persist.delta import _CRC, _DELTA_HEADER


def mutated(parent: bytes, seed: int = 7, edits: int = 5) -> bytes:
    """The parent with a handful of localized edits (checkpoint-like)."""
    rng = random.Random(seed)
    out = bytearray(parent)
    for _ in range(edits):
        if not out:
            break
        at = rng.randrange(len(out))
        kind = rng.randrange(3)
        chunk = bytes(rng.randrange(256) for _ in range(rng.randrange(1, 40)))
        if kind == 0:
            out[at:at] = chunk                    # insert
        elif kind == 1:
            out[at: at + len(chunk)] = chunk      # overwrite
        else:
            del out[at: at + rng.randrange(1, 40)]  # delete
    return bytes(out)


CASES = [
    (b"", b""),
    (b"", b"hello new world"),
    (b"old content here", b""),
    (b"identical payload " * 200, b"identical payload " * 200),
    (b"x" * 10_000, b"y" * 10_000),
]


class TestRoundTrip:
    @pytest.mark.parametrize("parent,target", CASES)
    def test_edge_shapes(self, parent, target):
        assert apply_delta(parent, encode_delta(parent, target)) == target

    def test_localized_edits(self):
        rng = random.Random(1)
        parent = bytes(rng.randrange(256) for _ in range(50_000))
        target = mutated(parent)
        blob = encode_delta(parent, target)
        assert apply_delta(parent, blob) == target
        # Mostly-identical inputs must beat a full copy by a wide margin.
        assert len(blob) < len(target) // 4

    def test_identical_inputs_collapse(self):
        parent = bytes(range(256)) * 100
        blob = encode_delta(parent, parent)
        assert apply_delta(parent, blob) == parent
        assert len(blob) < 100  # a header and a single COPY op

    def test_sub_block_payloads(self):
        parent = b"tiny"
        target = b"also tiny"
        assert len(parent) < DELTA_BLOCK and len(target) < DELTA_BLOCK
        assert apply_delta(parent, encode_delta(parent, target)) == target

    def test_custom_block_size(self):
        parent = bytes(range(256)) * 8
        target = mutated(parent, seed=2)
        blob = encode_delta(parent, target, block=16)
        assert apply_delta(parent, blob) == target

    def test_block_validation(self):
        with pytest.raises(ConfigError):
            encode_delta(b"a", b"b", block=0)
        with pytest.raises(ConfigError):
            encode_delta(b"a", b"b", block=0x10000)


class TestDeterminism:
    def test_same_inputs_same_bytes(self):
        rng = random.Random(3)
        parent = bytes(rng.randrange(256) for _ in range(20_000))
        target = mutated(parent, seed=4)
        assert encode_delta(parent, target) == encode_delta(parent, target)


class TestRejection:
    def make_blob(self):
        parent = b"the quick brown fox " * 50
        target = parent.replace(b"quick", b"rapid")
        return parent, target, encode_delta(parent, target)

    def test_wrong_parent_rejected(self):
        parent, _, blob = self.make_blob()
        with pytest.raises(SnapshotError, match="different parent"):
            apply_delta(parent + b"!", blob)
        with pytest.raises(SnapshotError, match="different parent"):
            apply_delta(b"", blob)

    def test_truncated_blob_rejected(self):
        parent, _, blob = self.make_blob()
        with pytest.raises(SnapshotError):
            apply_delta(parent, blob[: len(blob) // 2])

    def test_bit_flip_rejected(self):
        parent, _, blob = self.make_blob()
        for at in (2, _DELTA_HEADER.size + 1, len(blob) - 2):
            flipped = bytearray(blob)
            flipped[at] ^= 0xFF
            with pytest.raises(SnapshotError):
                apply_delta(parent, bytes(flipped))

    def test_bad_magic_rejected(self):
        parent, _, blob = self.make_blob()
        bad = b"XXXX" + blob[4:]
        with pytest.raises(SnapshotError):
            apply_delta(parent, bad)

    def reframe(self, body: bytes) -> bytes:
        """Re-CRC a doctored frame so only op validation can reject it."""
        return body + _CRC.pack(zlib.crc32(body))

    def test_copy_outside_parent_rejected(self):
        parent = b"p" * 300
        header = _DELTA_HEADER.pack(
            b"RDLT", 1, DELTA_BLOCK, len(parent), zlib.crc32(parent),
            10, 0, 1)
        op = bytes([0x00]) + struct.pack("<QQ", len(parent) - 2, 10)
        with pytest.raises(SnapshotError, match="outside its parent"):
            apply_delta(parent, self.reframe(header + op))

    def test_unknown_tag_rejected(self):
        parent = b"p" * 300
        header = _DELTA_HEADER.pack(
            b"RDLT", 1, DELTA_BLOCK, len(parent), zlib.crc32(parent),
            1, 0, 1)
        with pytest.raises(SnapshotError, match="unknown op tag"):
            apply_delta(parent, self.reframe(header + bytes([0x7F])))

    def test_trailing_bytes_rejected(self):
        parent, target, blob = self.make_blob()
        body = blob[: -_CRC.size] + b"\x00" * 4
        with pytest.raises(SnapshotError):
            apply_delta(parent, self.reframe(body))

    def test_result_mismatch_rejected(self):
        import zlib

        parent = b"payload " * 40
        header = _DELTA_HEADER.pack(
            b"RDLT", 1, DELTA_BLOCK, len(parent), zlib.crc32(parent),
            4, zlib.crc32(b"good"), 1)
        op = bytes([0x01]) + struct.pack("<Q", 4) + b"evil"
        with pytest.raises(SnapshotError, match="checksum"):
            apply_delta(parent, self.reframe(header + op))
