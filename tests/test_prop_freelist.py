"""Property-based tests for the free-extent index.

Invariant under any operation sequence: the index plus the allocated
set partitions the volume — no byte is lost, duplicated, or handed out
twice — and the internal tiers stay synchronized.

The parity suite additionally drives the tiered engine and the naive
flat-list reference model (:class:`NaiveFreeExtentIndex`) with
identical operation sequences and asserts byte-identical free maps and
placement-identical policy answers — including the banded ``first_fit``
edge cases where a free run straddles ``min_start``.
"""

from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.alloc.extent import Extent
from repro.alloc.freelist import FreeExtentIndex
from repro.alloc.naive import NaiveFreeExtentIndex

CAPACITY = 4096


@st.composite
def operation_lists(draw):
    return draw(st.lists(
        st.tuples(
            st.sampled_from(["alloc_first", "alloc_best", "alloc_worst",
                             "free_random"]),
            st.integers(min_value=1, max_value=256),
        ),
        max_size=60,
    ))


@given(operation_lists())
@settings(max_examples=120, deadline=None)
def test_conservation_under_any_sequence(ops):
    index = FreeExtentIndex(CAPACITY)
    allocated: list[Extent] = []
    for op, size in ops:
        if op == "free_random":
            if allocated:
                index.add(allocated.pop(size % len(allocated)))
        else:
            query = {
                "alloc_first": index.first_fit,
                "alloc_best": index.best_fit,
                "alloc_worst": index.worst_fit,
            }[op]
            run = query(size)
            if run is None:
                continue
            taken, _ = run.take_front(size)
            index.remove(taken)
            allocated.append(taken)
        index.check_invariants()
    assert index.total_free + sum(e.length for e in allocated) == CAPACITY
    # Allocated extents never overlap each other.
    ordered = sorted(allocated, key=lambda e: e.start)
    for a, b in zip(ordered, ordered[1:]):
        assert a.end <= b.start


@given(st.lists(st.integers(min_value=0, max_value=CAPACITY - 1),
                min_size=1, max_size=64, unique=True))
@settings(max_examples=100, deadline=None)
def test_free_everything_coalesces_to_one_run(starts):
    """Allocating arbitrary single bytes and freeing them all must end
    with exactly one maximal free run."""
    index = FreeExtentIndex(CAPACITY)
    taken = []
    for start in starts:
        ext = Extent(start, 1)
        index.remove(ext)
        taken.append(ext)
    for ext in taken:
        index.add(ext)
    assert list(index) == [Extent(0, CAPACITY)]


class FreeListMachine(RuleBasedStateMachine):
    """Stateful exploration of interleaved queries and mutations."""

    def __init__(self):
        super().__init__()
        self.index = FreeExtentIndex(CAPACITY)
        self.allocated: list[Extent] = []

    @rule(size=st.integers(min_value=1, max_value=512))
    def alloc_first_fit(self, size):
        run = self.index.first_fit(size)
        if run is not None:
            taken, _ = run.take_front(size)
            self.index.remove(taken)
            self.allocated.append(taken)

    @rule(size=st.integers(min_value=1, max_value=512))
    def alloc_best_fit(self, size):
        run = self.index.best_fit(size)
        if run is not None:
            taken, _ = run.take_front(size)
            self.index.remove(taken)
            self.allocated.append(taken)

    @rule(pick=st.integers(min_value=0, max_value=10**6))
    def free_one(self, pick):
        if self.allocated:
            self.index.add(self.allocated.pop(pick % len(self.allocated)))

    @invariant()
    def views_consistent(self):
        self.index.check_invariants()

    @invariant()
    def bytes_conserved(self):
        total = self.index.total_free + \
            sum(e.length for e in self.allocated)
        assert total == CAPACITY


TestFreeListMachine = FreeListMachine.TestCase
TestFreeListMachine.settings = settings(max_examples=40, deadline=None,
                                        stateful_step_count=40)


# ----------------------------------------------------------------------
# Parity: tiered engine vs the naive flat-list reference model
# ----------------------------------------------------------------------

@st.composite
def parity_ops(draw):
    op = st.one_of(
        st.tuples(st.sampled_from(["first", "best", "worst"]),
                  st.integers(min_value=1, max_value=CAPACITY)),
        st.tuples(st.just("next"),
                  st.integers(min_value=1, max_value=512),
                  st.integers(min_value=0, max_value=CAPACITY)),
        st.tuples(st.just("banded"),
                  st.integers(min_value=1, max_value=512),
                  st.integers(min_value=0, max_value=CAPACITY - 1),
                  st.integers(min_value=0, max_value=CAPACITY)),
        st.tuples(st.just("free"),
                  st.integers(min_value=0, max_value=10**6)),
    )
    return draw(st.lists(op, max_size=80))


def _query(index, op):
    """Run one drawn query op against one index; None when it is a miss."""
    kind = op[0]
    if kind == "first":
        return index.first_fit(op[1])
    if kind == "best":
        return index.best_fit(op[1])
    if kind == "worst":
        return index.worst_fit(op[1])
    if kind == "next":
        return index.next_fit(op[1], op[2])
    # banded: max_start is drawn independently and may sit below
    # min_start, which must be a miss in both engines.
    return index.first_fit(op[1], min_start=op[2], max_start=op[3])


@given(parity_ops())
@settings(max_examples=150, deadline=None)
def test_tiered_matches_naive_reference(ops):
    """Identical op sequences must yield identical free maps and answers."""
    tiered = FreeExtentIndex(CAPACITY)
    naive = NaiveFreeExtentIndex(CAPACITY)
    allocated: list[Extent] = []
    for op in ops:
        if op[0] == "free":
            if allocated:
                ext = allocated.pop(op[1] % len(allocated))
                tiered.add(ext)
                naive.add(ext)
        else:
            run_t = _query(tiered, op)
            run_n = _query(naive, op)
            assert run_t == run_n, f"{op}: {run_t} != {run_n}"
            if run_t is not None and op[0] != "banded":
                size = op[1]
                taken, _ = run_t.take_front(size)
                tiered.remove(taken)
                naive.remove(taken)
                allocated.append(taken)
        assert tiered.total_free == naive.total_free
        assert list(tiered) == list(naive)
    tiered.check_invariants()
    naive.check_invariants()
    assert tiered.largest() == naive.largest()
    assert list(tiered.runs_by_size_desc()) == list(naive.runs_by_size_desc())


def test_banded_first_fit_straddle_parity():
    """Exhaustive banded grid around runs straddling min_start.

    The free map [8,24) [32,40) [48,64) is probed with every
    (size, min_start, max_start) combination, so min_start lands before,
    inside, and exactly on run boundaries — the straddle cases where the
    usable tail, not the full run, must satisfy the request.
    """
    cap = 64
    tiered = FreeExtentIndex(cap)
    naive = NaiveFreeExtentIndex(cap)
    for ext in (Extent(0, 8), Extent(24, 8), Extent(40, 8)):
        tiered.remove(ext)
        naive.remove(ext)
    assert list(tiered) == list(naive)
    for size in range(1, 20):
        for min_start in range(cap):
            for max_start in (None, *range(0, cap + 1, 4)):
                got = tiered.first_fit(size, min_start=min_start,
                                       max_start=max_start)
                want = naive.first_fit(size, min_start=min_start,
                                       max_start=max_start)
                assert got == want, (
                    f"first_fit({size}, min_start={min_start}, "
                    f"max_start={max_start}): {got} != {want}"
                )


def test_parity_across_block_splits():
    """Parity must hold past the address tier's block-split threshold."""
    cap = 1 << 22
    tiered = FreeExtentIndex(cap, initially_free=False)
    naive = NaiveFreeExtentIndex(cap, initially_free=False)
    # 1500 isolated runs forces at least two block splits (_LOAD = 256).
    for i in range(1500):
        ext = Extent(i * 2048, 1 + (i * 7919) % 512)
        tiered.add(ext)
        naive.add(ext)
    tiered.check_invariants()
    assert list(tiered) == list(naive)
    assert tiered.total_free == naive.total_free
    for size in (1, 64, 200, 511, 512, 513):
        assert tiered.first_fit(size) == naive.first_fit(size)
        assert tiered.best_fit(size) == naive.best_fit(size)
        assert tiered.worst_fit(size) == naive.worst_fit(size)
        mid = cap // 2
        assert tiered.first_fit(size, min_start=mid) == \
            naive.first_fit(size, min_start=mid)
        # Banded across block boundaries: windows that land mid-block,
        # span blocks, and cut off before any fitting run.
        for lo, hi in ((0, 100 * 2048), (400 * 2048, 800 * 2048),
                       (mid, mid + 64 * 2048), (mid, mid)):
            assert tiered.first_fit(size, min_start=lo, max_start=hi) == \
                naive.first_fit(size, min_start=lo, max_start=hi)
    # Tear down every other run to exercise deletes, block shrink, and
    # stale-max recomputation, then re-check parity.
    for i in range(0, 1500, 2):
        ext = Extent(i * 2048, 1 + (i * 7919) % 512)
        tiered.remove(ext)
        naive.remove(ext)
    tiered.check_invariants()
    assert list(tiered) == list(naive)
    assert list(tiered.runs_by_size_desc()) == list(naive.runs_by_size_desc())
