"""Property-based tests for the free-extent index.

Invariant under any operation sequence: the index plus the allocated
set partitions the volume — no byte is lost, duplicated, or handed out
twice — and the two internal views stay synchronized.
"""

from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.alloc.extent import Extent
from repro.alloc.freelist import FreeExtentIndex

CAPACITY = 4096


@st.composite
def operation_lists(draw):
    return draw(st.lists(
        st.tuples(
            st.sampled_from(["alloc_first", "alloc_best", "alloc_worst",
                             "free_random"]),
            st.integers(min_value=1, max_value=256),
        ),
        max_size=60,
    ))


@given(operation_lists())
@settings(max_examples=120, deadline=None)
def test_conservation_under_any_sequence(ops):
    index = FreeExtentIndex(CAPACITY)
    allocated: list[Extent] = []
    for op, size in ops:
        if op == "free_random":
            if allocated:
                index.add(allocated.pop(size % len(allocated)))
        else:
            query = {
                "alloc_first": index.first_fit,
                "alloc_best": index.best_fit,
                "alloc_worst": index.worst_fit,
            }[op]
            run = query(size)
            if run is None:
                continue
            taken, _ = run.take_front(size)
            index.remove(taken)
            allocated.append(taken)
        index.check_invariants()
    assert index.total_free + sum(e.length for e in allocated) == CAPACITY
    # Allocated extents never overlap each other.
    ordered = sorted(allocated, key=lambda e: e.start)
    for a, b in zip(ordered, ordered[1:]):
        assert a.end <= b.start


@given(st.lists(st.integers(min_value=0, max_value=CAPACITY - 1),
                min_size=1, max_size=64, unique=True))
@settings(max_examples=100, deadline=None)
def test_free_everything_coalesces_to_one_run(starts):
    """Allocating arbitrary single bytes and freeing them all must end
    with exactly one maximal free run."""
    index = FreeExtentIndex(CAPACITY)
    taken = []
    for start in starts:
        ext = Extent(start, 1)
        index.remove(ext)
        taken.append(ext)
    for ext in taken:
        index.add(ext)
    assert list(index) == [Extent(0, CAPACITY)]


class FreeListMachine(RuleBasedStateMachine):
    """Stateful exploration of interleaved queries and mutations."""

    def __init__(self):
        super().__init__()
        self.index = FreeExtentIndex(CAPACITY)
        self.allocated: list[Extent] = []

    @rule(size=st.integers(min_value=1, max_value=512))
    def alloc_first_fit(self, size):
        run = self.index.first_fit(size)
        if run is not None:
            taken, _ = run.take_front(size)
            self.index.remove(taken)
            self.allocated.append(taken)

    @rule(size=st.integers(min_value=1, max_value=512))
    def alloc_best_fit(self, size):
        run = self.index.best_fit(size)
        if run is not None:
            taken, _ = run.take_front(size)
            self.index.remove(taken)
            self.allocated.append(taken)

    @rule(pick=st.integers(min_value=0, max_value=10**6))
    def free_one(self, pick):
        if self.allocated:
            self.index.add(self.allocated.pop(pick % len(self.allocated)))

    @invariant()
    def views_consistent(self):
        self.index.check_invariants()

    @invariant()
    def bytes_conserved(self):
        total = self.index.total_free + \
            sum(e.length for e in self.allocated)
        assert total == CAPACITY


TestFreeListMachine = FreeListMachine.TestCase
TestFreeListMachine.settings = settings(max_examples=40, deadline=None,
                                        stateful_step_count=40)
