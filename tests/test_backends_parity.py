"""Cross-backend contract tests: every backend honours ObjectStore.

One parametrized suite runs against all four backends plus a 3-shard
:class:`ShardedStore` composite, checking the get/put semantics the
experiment driver relies on.  Backend-specific behaviour lives in the
dedicated test modules.
"""

import pytest

from repro.backends import StoreSpec, build_store
from repro.backends.base import ObjectStore
from repro.backends.blob_backend import BlobBackend
from repro.backends.file_backend import FileBackend
from repro.backends.gfs_backend import GfsChunkBackend
from repro.backends.lfs_backend import LfsBackend
from repro.disk.device import BlockDevice
from repro.disk.geometry import scaled_disk
from repro.errors import ObjectNotFoundError
from repro.units import KB, MB

BACKENDS = ["filesystem", "database", "gfs", "lfs", "sharded"]


def make_store(kind: str, *, store_data: bool = False,
               capacity: int = 64 * MB):
    device = BlockDevice(scaled_disk(capacity), store_data=store_data)
    if kind == "filesystem":
        return FileBackend(device)
    if kind == "database":
        return BlobBackend(device)
    if kind == "gfs":
        return GfsChunkBackend(device, chunk_size=8 * MB)
    if kind == "lfs":
        return LfsBackend(device, segment_size=2 * MB)
    if kind == "sharded":
        # Three filesystem shards, each of `capacity`, so per-shard
        # headroom matches what the other backends get.
        return build_store(StoreSpec("filesystem",
                                     volume_bytes=3 * capacity,
                                     store_data=store_data, shards=3))
    raise AssertionError(kind)


@pytest.fixture(params=BACKENDS)
def store(request):
    return make_store(request.param)


@pytest.fixture(params=BACKENDS)
def content_store(request):
    return make_store(request.param, store_data=True)


class TestProtocol:
    def test_satisfies_runtime_protocol(self, store):
        assert isinstance(store, ObjectStore)

    def test_put_get_exists(self, store):
        store.put("a", size=256 * KB)
        assert store.exists("a")
        assert store.meta("a").size == 256 * KB
        store.get("a")  # timed read must not raise

    def test_keys(self, store):
        for i in range(5):
            store.put(f"k{i}", size=64 * KB)
        assert sorted(store.keys()) == [f"k{i}" for i in range(5)]

    def test_keys_insertion_order(self, store):
        """The protocol's ordering contract: keys() is insertion order;
        overwrite keeps a key's position, delete + fresh put moves it
        to the end.  Every backend (including the composite) must agree
        so reports and workloads are reproducible across backends."""
        for key in ("c", "a", "b"):
            store.put(key, size=64 * KB)
        assert store.keys() == ["c", "a", "b"]
        store.overwrite("a", size=96 * KB)
        assert store.keys() == ["c", "a", "b"]
        store.delete("c")
        assert store.keys() == ["a", "b"]
        store.put("c", size=64 * KB)
        assert store.keys() == ["a", "b", "c"]

    def test_read_many_matches_sequential_gets(self, content_store):
        payloads = {f"k{i}": bytes([i + 1]) * (32 * KB) for i in range(6)}
        for key, payload in payloads.items():
            content_store.put(key, data=payload)
        keys = list(payloads)[::-1]
        assert content_store.read_many(keys) == \
            [content_store.get(k) for k in keys]

    def test_missing_object_raises(self, store):
        with pytest.raises(ObjectNotFoundError):
            store.get("ghost")
        with pytest.raises(ObjectNotFoundError):
            store.meta("ghost")

    def test_delete(self, store):
        store.put("a", size=64 * KB)
        store.delete("a")
        assert not store.exists("a")
        with pytest.raises(ObjectNotFoundError):
            store.get("a")

    def test_overwrite_bumps_version_and_size(self, store):
        store.put("a", size=64 * KB)
        store.overwrite("a", size=128 * KB)
        meta = store.meta("a")
        assert meta.size == 128 * KB
        assert meta.version == 2

    def test_object_extents_cover_size(self, store):
        store.put("a", size=200 * KB)
        extents = store.object_extents("a")
        covered = sum(e.length for e in extents)
        assert covered >= 200 * KB  # rounding to clusters/pages allowed
        assert covered <= 200 * KB + 64 * KB

    def test_devices_nonempty(self, store):
        assert len(store.devices()) >= 1

    def test_store_stats(self, store):
        store.put("a", size=1 * MB)
        stats = store.store_stats()
        assert stats.objects == 1
        assert stats.live_bytes == 1 * MB
        assert 0 < stats.occupancy < 1
        assert stats.capacity > 0

    def test_free_bytes_decreases_with_data(self, store):
        before = store.free_bytes()
        store.put("a", size=1 * MB)
        assert store.free_bytes() < before


class TestContentParity:
    def test_round_trip(self, content_store):
        payload = bytes(range(256)) * (64 * KB // 256)
        content_store.put("a", data=payload)
        assert content_store.get("a") == payload

    def test_overwrite_round_trip(self, content_store):
        content_store.put("a", data=b"v1" * (32 * KB))
        content_store.overwrite("a", data=b"v2" * (48 * KB))
        assert content_store.get("a") == b"v2" * (48 * KB)

    def test_range_read(self, content_store):
        payload = b"".join(bytes([i] * KB) for i in range(128))
        content_store.put("a", data=payload)
        got = content_store.get("a", offset=37 * KB, length=3 * KB)
        assert got == payload[37 * KB: 40 * KB]

    def test_many_objects_independent(self, content_store):
        for i in range(8):
            content_store.put(f"k{i}", data=bytes([i]) * (16 * KB))
        for i in range(8):
            assert content_store.get(f"k{i}") == bytes([i]) * (16 * KB)


class TestChurnParity:
    @pytest.mark.parametrize("kind", BACKENDS)
    def test_sustained_churn_never_wedges(self, kind):
        import random

        rng = random.Random(13)
        store = make_store(kind, capacity=32 * MB)
        keys = [f"k{i}" for i in range(20)]
        for key in keys:
            store.put(key, size=512 * KB)
        for _ in range(150):
            store.overwrite(rng.choice(keys), size=512 * KB)
        stats = store.store_stats()
        assert stats.objects == 20
        assert stats.live_bytes == 20 * 512 * KB
