"""Tests for the defragmentation utilities."""

import pytest

from repro.core.defrag import Defragmenter, rebuild_database
from repro.core.fragmentation import fragment_report
from repro.core.workload import ConstantSize, WorkloadSpec, bulk_load, churn_to_age
from repro.errors import ConfigError
from repro.rng import substream
from repro.units import KB, MB


def age_store(store, *, size=256 * KB, occupancy=0.8, age=3.0, seed=21):
    spec = WorkloadSpec(sizes=ConstantSize(size),
                        target_occupancy=occupancy)
    state = bulk_load(store, spec, substream(seed, "w"))
    churn_to_age(store, state, age)
    return state


class TestFilesystemDefrag:
    def test_reduces_fragments(self, file_store):
        age_store(file_store)
        before = fragment_report(file_store)
        stats = Defragmenter(file_store).run()
        after = fragment_report(file_store)
        assert after.total_fragments <= before.total_fragments
        assert stats.fragments_before == before.total_fragments
        assert stats.fragments_after == after.total_fragments

    def test_moves_charge_io(self, file_store):
        age_store(file_store)
        if fragment_report(file_store).max < 2:
            pytest.skip("workload did not fragment")
        before = file_store.device.stats.total_bytes
        stats = Defragmenter(file_store).run()
        if stats.objects_moved:
            assert file_store.device.stats.total_bytes > before
            assert stats.bytes_moved > 0

    def test_budget_limits_work(self, file_store):
        age_store(file_store)
        report = fragment_report(file_store)
        if report.max < 2:
            pytest.skip("workload did not fragment")
        stats = Defragmenter(file_store).run(budget_bytes=256 * KB)
        assert stats.bytes_moved <= 256 * KB

    def test_clean_store_is_noop(self, file_store):
        file_store.put("a", size=1 * MB)
        stats = Defragmenter(file_store).run()
        assert stats.objects_moved == 0
        assert stats.improvement == 0.0

    def test_content_preserved(self, content_file_store):
        payload = bytes(range(256)) * (256 * KB // 256)
        content_file_store.put("a", data=payload)
        for _ in range(3):
            content_file_store.overwrite("a", data=payload)
        Defragmenter(content_file_store).run(min_fragments=1)
        assert content_file_store.get("a") == payload


class TestDatabaseDefrag:
    def test_defragmenter_runs_on_blob_backend(self, blob_store):
        age_store(blob_store, occupancy=0.6, age=2.0)
        before = fragment_report(blob_store)
        Defragmenter(blob_store).run()
        after = fragment_report(blob_store)
        assert after.mean <= before.mean

    def test_rebuild_restores_near_contiguity(self, blob_store):
        age_store(blob_store, occupancy=0.6, age=3.0)
        before = fragment_report(blob_store)
        assert before.mean > 1.2  # aged DB must be fragmented
        stats = rebuild_database(blob_store)
        after = fragment_report(blob_store)
        assert after.mean < before.mean
        assert stats.objects_moved == after.objects
        assert stats.improvement > 0

    def test_rebuild_preserves_content(self, content_blob_store):
        payloads = {}
        for i in range(6):
            payloads[f"k{i}"] = bytes([i + 1]) * (128 * KB)
            content_blob_store.put(f"k{i}", data=payloads[f"k{i}"])
        for i in range(6):
            payloads[f"k{i}"] = bytes([i + 100]) * (128 * KB)
            content_blob_store.overwrite(f"k{i}", data=payloads[f"k{i}"])
        rebuild_database(content_blob_store)
        for key, payload in payloads.items():
            assert content_blob_store.get(key) == payload


class TestUnsupportedBackend:
    def test_gfs_has_no_strategy(self):
        from repro.backends.gfs_backend import GfsChunkBackend
        from repro.disk.device import BlockDevice
        from repro.disk.geometry import scaled_disk

        store = GfsChunkBackend(BlockDevice(scaled_disk(64 * MB)),
                                chunk_size=8 * MB)
        store.put("a", size=1 * MB)
        store.overwrite("a", size=1 * MB)
        # GFS objects are always contiguous, so a pass finds nothing to
        # move and never needs the (missing) move strategy.
        stats = Defragmenter(store).run()
        assert stats.objects_moved == 0
        # Asking it to move contiguous objects anyway hits the guard.
        with pytest.raises(ConfigError):
            Defragmenter(store).run(min_fragments=1)
