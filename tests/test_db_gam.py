"""Tests for the GAM/PFS-style page and extent allocator."""

import pytest

from repro.db.gam import GamAllocator
from repro.errors import AllocationError, ConfigError, CorruptionError
from repro.units import PAGES_PER_EXTENT


@pytest.fixture
def gam():
    return GamAllocator(16)  # 16 extents = 128 pages


class TestUniformExtents:
    def test_lowest_first(self, gam):
        assert gam.alloc_uniform_extent() == 0
        assert gam.alloc_uniform_extent() == 1

    def test_freed_extent_reused_lowest_first(self, gam):
        for _ in range(4):
            gam.alloc_uniform_extent()
        gam.free_pages(list(range(8, 16)))   # free extent 1 entirely
        assert gam.alloc_uniform_extent() == 1

    def test_exhaustion_returns_none(self, gam):
        for _ in range(16):
            assert gam.alloc_uniform_extent() is not None
        assert gam.alloc_uniform_extent() is None


class TestPageAllocation:
    def test_lowest_page_first(self, gam):
        assert gam.alloc_page() == 0
        assert gam.alloc_page() == 1

    def test_prefers_partial_extent_below_free(self, gam):
        gam.alloc_page()  # extent 0 now partial
        gam.alloc_uniform_extent()  # extent 1 full
        assert gam.alloc_page() == 1 * 0 + 1  # next page in extent 0

    def test_address_order_across_frees(self, gam):
        pages = [gam.alloc_page() for _ in range(20)]
        gam.free_page(pages[3])
        gam.free_page(pages[11])
        assert gam.alloc_page() == pages[3]
        assert gam.alloc_page() == pages[11]

    def test_full_raises(self, gam):
        for _ in range(16 * PAGES_PER_EXTENT):
            gam.alloc_page()
        with pytest.raises(AllocationError):
            gam.alloc_page()


class TestAllocPages:
    def test_prefers_whole_extents(self, gam):
        pages = gam.alloc_pages(20)
        assert pages[:8] == list(range(0, 8))
        assert pages[8:16] == list(range(8, 16))
        assert len(pages) == 20

    def test_remainder_uses_single_pages(self, gam):
        pages = gam.alloc_pages(10)
        # 8 from a uniform extent, 2 singles from the next extent.
        assert len(pages) == 10
        assert len(set(pages)) == 10

    def test_falls_back_to_partials_when_no_free_extent(self, gam):
        gam.alloc_pages(16 * PAGES_PER_EXTENT)  # fill the file
        # Free scattered single pages across several extents.
        for page in (5, 21, 77, 99):
            gam.free_page(page)
        got = gam.alloc_pages(4)
        assert sorted(got) == [5, 21, 77, 99]

    def test_insufficient_space(self, gam):
        gam.alloc_pages(120)
        with pytest.raises(AllocationError):
            gam.alloc_pages(16)

    def test_count_validation(self, gam):
        with pytest.raises(ConfigError):
            gam.alloc_pages(0)


class TestFree:
    def test_double_free_rejected(self, gam):
        page = gam.alloc_page()
        gam.free_page(page)
        with pytest.raises(CorruptionError):
            gam.free_page(page)

    def test_free_unallocated_rejected(self, gam):
        with pytest.raises(CorruptionError):
            gam.free_page(42)

    def test_out_of_range_rejected(self, gam):
        with pytest.raises(CorruptionError):
            gam.free_page(128)

    def test_counts(self, gam):
        assert gam.free_page_count == 128
        gam.alloc_pages(10)
        assert gam.free_page_count == 118
        assert gam.used_page_count == 10


class TestInvariants:
    def test_random_churn_consistent(self, gam):
        import random

        rng = random.Random(5)
        live: list[int] = []
        for _ in range(400):
            if live and rng.random() < 0.5:
                idx = rng.randrange(len(live))
                gam.free_page(live.pop(idx))
            else:
                try:
                    live.extend(gam.alloc_pages(rng.randint(1, 12)))
                except AllocationError:
                    pass
            gam.check_invariants()
        assert gam.used_page_count == len(live)

    def test_extent_classification(self, gam):
        gam.alloc_page()
        assert gam.partial_extent_count == 1
        assert gam.free_extent_count == 15
        gam.alloc_pages(7)  # fills extent 0
        assert gam.partial_extent_count == 0
        assert gam.is_page_used(0)
        assert not gam.is_page_used(8)
