"""Rebalance invariants: contract, readability, accounting, resume.

The invariants every migration must hold:

* the :meth:`keys` insertion-order contract survives any rebalance (a
  move updates the routing map's value, never the key's position);
* every object is readable *mid*-migration (the copy lands on the
  target shard before the source copy is deleted) and byte-identical
  post-migration on content-storing devices;
* migration I/O is visible: ``StoreStats.migrated_objects`` /
  ``migrated_bytes`` report exactly what moved, and the devices were
  charged through the normal submit path;
* an aging run that rebalances at a sampled age can be killed after
  the post-rebalance checkpoint and resumed to a run record identical
  to the uninterrupted baseline.
"""

import pytest

from repro.backends.registry import build_store
from repro.backends.sharded import RebalanceReport, ShardedStore
from repro.backends.spec import StoreSpec
from repro.core.experiment import ExperimentConfig, ExperimentRunner
from repro.core.workload import ConstantSize
from repro.errors import ConfigError
from repro.units import KB, MB


def make_store(*, store_data: bool = False, placement: str = "hash",
               shards: int = 4, overlap: bool = False) -> ShardedStore:
    spec = StoreSpec("lfs", volume_bytes=96 * MB, shards=shards,
                     placement=placement, store_data=store_data,
                     overlap=overlap)
    return build_store(spec)


def payload(i: int, size: int) -> bytes:
    return bytes([i % 251 + 1]) * size


class TestRebalanceContract:
    def test_keys_order_preserved(self):
        store = make_store()
        names = [f"obj-{i}" for i in range(24)]
        for i, name in enumerate(names):
            store.put(name, size=(i % 5 + 1) * 64 * KB)
        # Interleave a delete + re-put so the order is non-trivial.
        store.delete(names[3])
        store.put(names[3], size=32 * KB)
        expected = store.keys()
        report = store.rebalance(mode="even")
        assert store.keys() == expected
        store.rebalance(mode="placement")
        assert store.keys() == expected
        assert isinstance(report, RebalanceReport)

    def test_unknown_mode_rejected(self):
        store = make_store()
        store.put("a", size=64 * KB)
        store.put("b", size=64 * KB)
        with pytest.raises(ConfigError):
            store.rebalance(mode="sideways")

    def test_placement_mode_restores_policy(self):
        store = make_store(placement="round_robin", shards=3)
        for i in range(9):
            store.put(f"obj-{i}", size=64 * KB)
        # delete + re-put drifts keys off the strict rotation.
        for i in (0, 3, 6):
            store.delete(f"obj-{i}")
            store.put(f"obj-{i}", size=64 * KB)
        store.rebalance(mode="placement")
        for pos, key in enumerate(store.keys()):
            assert store.shard_for(key) == pos % 3

    def test_even_mode_reduces_skew(self):
        # size_banded placement with one huge band is maximal skew:
        # every object lands on shard 0 until rebalanced.
        store = make_store(placement="size_banded")
        for i in range(12):
            store.put(f"obj-{i}", size=128 * KB)
        assert store.occupancy_skew() == float("inf")
        report = store.rebalance(mode="even")
        assert report.moved_objects > 0
        assert report.skew_after < report.skew_before
        live = [s.live_bytes for s in store.shard_stats()]
        assert min(live) > 0


class TestMigrationReadability:
    def test_readable_mid_and_post_migration(self):
        store = make_store(store_data=True, placement="size_banded")
        sizes = {}
        for i in range(10):
            size = (i % 3 + 1) * 64 * KB
            store.put(f"obj-{i}", data=payload(i, size))
            sizes[f"obj-{i}"] = size

        seen_mid_reads = []

        def on_move(key: str, src: int, dst: int) -> None:
            # Mid-migration: the moved key and every other key must
            # read back whole through the composite right now.
            assert src != dst
            for name, size in sizes.items():
                data = store.get(name)
                assert data == payload(int(name.split("-")[1]), size)
            seen_mid_reads.append(key)

        report = store.rebalance(mode="even", on_move=on_move)
        assert report.moved_objects == len(seen_mid_reads) > 0
        for name, size in sizes.items():
            assert store.get(name) == payload(int(name.split("-")[1]),
                                              size)
        # meta/versions survived the move.
        for name, size in sizes.items():
            assert store.meta(name).size == size

    def test_migration_io_visible_in_storestats(self):
        store = make_store(placement="size_banded")
        for i in range(8):
            store.put(f"obj-{i}", size=96 * KB)
        devices_before = sum(d.stats.total_bytes for d in store.devices())
        assert store.store_stats().migrated_objects == 0
        report = store.rebalance(mode="even")
        stats = store.store_stats()
        assert stats.migrated_objects == report.moved_objects > 0
        assert stats.migrated_bytes == report.moved_bytes > 0
        # The devices were actually charged for the migration.
        devices_after = sum(d.stats.total_bytes for d in store.devices())
        assert devices_after - devices_before >= 2 * report.moved_bytes

    def test_overlap_round_spans_source_and_target(self):
        store = make_store(placement="size_banded", overlap=True)
        for i in range(6):
            store.put(f"obj-{i}", size=96 * KB)
        rounds_before = store.scheduler.rounds
        wall_before = store.scheduler.wall_time_s
        report = store.rebalance(mode="even")
        assert report.moved_objects > 0
        # One dispatch round per migrated object, each costing wall
        # time between the slower lane and the two-lane sum.
        assert store.scheduler.rounds - rounds_before \
            == report.moved_objects
        wall_delta = store.scheduler.wall_time_s - wall_before
        assert 0.0 < wall_delta


class TestResumeAcrossRebalance:
    AGES = (0.0, 1.0, 2.0)

    def config(self) -> ExperimentConfig:
        # overlap=True so the resumed record must also reproduce the
        # scheduler's wall-time fields exactly.
        return ExperimentConfig(
            store=StoreSpec("filesystem", volume_bytes=96 * MB, shards=3,
                            overlap=True),
            sizes=ConstantSize(256 * KB),
            occupancy=0.4,
            ages=self.AGES,
            reads_per_sample=8,
            seed=13,
            rebalance_ages=(1.0,),
        )

    class _Killed(Exception):
        pass

    def test_killed_after_rebalance_checkpoint_resumes_identically(
            self, tmp_path):
        config = self.config()
        baseline = ExperimentRunner(config).run()
        assert baseline.config["rebalance_ages"] == [1.0]

        def killer(phase: str, value: float) -> None:
            if phase == "checkpoint" and value == 1.0:
                raise self._Killed

        runner = ExperimentRunner(config, progress=killer,
                                  checkpoint_dir=tmp_path)
        with pytest.raises(self._Killed):
            runner.run()
        resumed = ExperimentRunner(config, checkpoint_dir=tmp_path,
                                   resume=True).run()
        assert resumed.to_dict() == baseline.to_dict()

    def test_rebalance_ages_validation(self):
        with pytest.raises(ConfigError):
            ExperimentConfig(
                store=StoreSpec("filesystem", shards=3),
                sizes=ConstantSize(256 * KB),
                ages=(0.0, 2.0),
                rebalance_ages=(1.0,),   # not a sampled age
            )
        with pytest.raises(ConfigError):
            ExperimentConfig(
                backend="filesystem",
                sizes=ConstantSize(256 * KB),
                ages=(0.0, 2.0),
                rebalance_ages=(2.0,),   # unsharded store
            )


class TestChargedBackgroundIo:
    """Throttled rebalance + background writes ride the normal lanes.

    The duty-cycle contract: at rate R, measured device seconds
    ``spent`` are followed by a ``spent * (1-R)/R`` stall, so the
    background stream occupies exactly an R fraction of the timeline
    it touches — visible to the event queue as real wall time.
    """

    def event_store(self, **kw) -> ShardedStore:
        spec = StoreSpec("lfs", volume_bytes=96 * MB, shards=4,
                         placement="round_robin", overlap=True,
                         queue="event", queue_depth=16, **kw)
        store = build_store(spec)
        for i in range(16):
            store.put(f"obj-{i}", size=128 * KB)
        return store

    def test_rebalance_rate_validation(self):
        store = make_store()
        store.put("a", size=64 * KB)
        for bad in (0.0, -0.5, 1.5):
            with pytest.raises(ConfigError):
                store.rebalance(mode="even", rate=bad)

    def test_throttled_rebalance_stalls_the_timeline(self):
        # Same churn, two rates: the throttled run stalls the wall
        # clock by spent * (1-R)/R on top of the same copy time.
        def drift_then_rebalance(rate):
            store = self.event_store()
            # Placement drift: re-put a non-multiple of the shard
            # count so round-robin re-lands the keys elsewhere.
            for i in (1, 2, 3):
                store.delete(f"obj-{i}")
                store.put(f"obj-{i}", size=128 * KB)
            wall_before = store.scheduler.wall_time_s
            report = store.rebalance(mode="placement", rate=rate)
            store.scheduler.drain()
            return report, store.scheduler.wall_time_s - wall_before

        full, wall_full = drift_then_rebalance(1.0)
        slow, wall_slow = drift_then_rebalance(0.25)
        assert full.moved_objects == slow.moved_objects > 0
        assert full.stall_s == 0.0
        assert slow.copy_device_s > 0.0
        assert slow.stall_s == pytest.approx(
            slow.copy_device_s * 0.75 / 0.25, rel=1e-6)
        assert wall_slow > wall_full

    def test_background_write_charges_lanes_and_stalls(self):
        store = self.event_store(checkpoint_rate=0.5)
        written_before = sum(d.stats.write_bytes for d in store.devices())
        wall_before = store.scheduler.wall_time_s
        spent = store.background_write(1 * MB)
        store.scheduler.drain()
        written = sum(d.stats.write_bytes for d in store.devices())
        assert spent > 0.0
        assert written - written_before == 1 * MB
        # Duty cycle 0.5: the stall alone equals the summed device
        # seconds, and the dispatch round adds its makespan on top —
        # but never more than the fully serialized sum.
        wall_delta = store.scheduler.wall_time_s - wall_before
        assert spent < wall_delta <= 2 * spent + 1e-9

    def test_background_write_zero_rate_is_free(self):
        store = self.event_store()          # checkpoint_rate defaults 0
        clock_before = [d.clock_s for d in store.devices()]
        assert store.background_write(1 * MB) == 0.0
        assert store.background_write(0) == 0.0
        assert [d.clock_s for d in store.devices()] == clock_before
        with pytest.raises(ConfigError):
            store.background_write(1 * MB, rate=1.5)

    def test_background_write_splits_over_live_shards(self):
        store = self.event_store(checkpoint_rate=1.0)
        before = [d.stats.write_bytes for d in store.devices()]
        store.background_write(4 * MB + 3)
        store.scheduler.drain()
        deltas = [after - b for after, b in
                  zip((d.stats.write_bytes for d in store.devices()),
                      before)]
        assert sum(deltas) == 4 * MB + 3
        assert max(deltas) - min(deltas) <= 1  # even split + remainder
