"""Tests for size parsing, formatting, and integer helpers."""

import pytest

from repro.units import (
    EXTENT_SIZE,
    GB,
    KB,
    MB,
    PAGE_SIZE,
    PAGES_PER_EXTENT,
    ceil_div,
    fmt_size,
    parse_size,
    round_up,
)


class TestConstants:
    def test_binary_units(self):
        assert KB == 1024
        assert MB == 1024 * KB
        assert GB == 1024 * MB

    def test_sql_server_extent_geometry(self):
        # The 64 KB extent of 8 KB pages is load-bearing for Figure 3's
        # "one fragment per 64KB" convergence.
        assert PAGE_SIZE == 8 * KB
        assert PAGES_PER_EXTENT == 8
        assert EXTENT_SIZE == 64 * KB


class TestParseSize:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("256K", 256 * KB),
            ("256KB", 256 * KB),
            ("256kb", 256 * KB),
            ("10M", 10 * MB),
            ("10MB", 10 * MB),
            ("1.5MB", int(1.5 * MB)),
            ("40GB", 40 * GB),
            ("512", 512),
            ("512B", 512),
            ("1TiB", 1024 * GB),
        ],
    )
    def test_accepts_common_forms(self, text, expected):
        assert parse_size(text) == expected

    def test_int_passthrough(self):
        assert parse_size(4096) == 4096

    def test_whitespace_tolerated(self):
        assert parse_size("  10 MB  ") == 10 * MB

    @pytest.mark.parametrize("bad", ["", "ten", "10X", "MB", "-5K"])
    def test_rejects_garbage(self, bad):
        with pytest.raises(ValueError):
            parse_size(bad)


class TestFmtSize:
    @pytest.mark.parametrize(
        "nbytes,expected",
        [
            (256 * KB, "256K"),
            (10 * MB, "10M"),
            (40 * GB, "40G"),
            (512, "512B"),
            (int(1.5 * MB), "1.5M"),
        ],
    )
    def test_round_trip_labels(self, nbytes, expected):
        assert fmt_size(nbytes) == expected

    def test_negative(self):
        assert fmt_size(-10 * MB) == "-10M"

    def test_parse_fmt_round_trip(self):
        for value in (1, KB, 256 * KB, 10 * MB, 40 * GB):
            assert parse_size(fmt_size(value)) == value


class TestIntegerHelpers:
    def test_ceil_div_exact(self):
        assert ceil_div(64, 8) == 8

    def test_ceil_div_rounds_up(self):
        assert ceil_div(65, 8) == 9

    def test_ceil_div_rejects_zero_denominator(self):
        with pytest.raises(ValueError):
            ceil_div(1, 0)

    def test_round_up(self):
        assert round_up(100, 64) == 128
        assert round_up(128, 64) == 128
        assert round_up(1, 4096) == 4096
