"""Tests for the zoned disk geometry and seek/transfer model."""

import pytest

from repro.disk.geometry import (
    DiskGeometry,
    PAPER_DISK,
    Zone,
    make_disk,
    scaled_disk,
)
from repro.errors import ConfigError
from repro.units import GB, MB


class TestZone:
    def test_size(self):
        assert Zone(0, 100, 1.0).size == 100

    def test_rejects_empty(self):
        with pytest.raises(ConfigError):
            Zone(100, 100, 1.0)

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ConfigError):
            Zone(0, 100, 0.0)


class TestGeometryValidation:
    def test_zones_must_tile(self):
        with pytest.raises(ConfigError):
            DiskGeometry(capacity=200,
                         zones=(Zone(0, 100, 1.0), Zone(150, 200, 1.0)))

    def test_zones_must_cover_capacity(self):
        with pytest.raises(ConfigError):
            DiskGeometry(capacity=300,
                         zones=(Zone(0, 100, 1.0), Zone(100, 200, 1.0)))

    def test_full_seek_at_least_avg(self):
        with pytest.raises(ConfigError):
            make_disk(1 * GB, avg_seek_s=0.02)


class TestPaperDisk:
    def test_capacity_matches_table1(self):
        assert PAPER_DISK.capacity == 400 * GB

    def test_is_7200_rpm(self):
        assert PAPER_DISK.rpm == 7200.0
        # Half a revolution at 7200 rpm is ~4.17 ms.
        assert PAPER_DISK.avg_rotational_latency_s == pytest.approx(
            60.0 / 7200.0 / 2.0
        )

    def test_outer_band_faster_than_inner(self):
        outer = PAPER_DISK.rate_at(0)
        inner = PAPER_DISK.rate_at(PAPER_DISK.capacity - 1)
        assert outer > inner
        assert outer / inner == pytest.approx(65 / 33, rel=0.01)


class TestZoneLookup:
    def test_zone_at_boundaries(self):
        disk = make_disk(8 * MB, nzones=4)
        assert disk.zone_at(0).start == 0
        assert disk.zone_at(2 * MB).start == 2 * MB
        assert disk.zone_at(8 * MB - 1).end == 8 * MB

    def test_zone_at_out_of_range(self):
        disk = make_disk(8 * MB)
        with pytest.raises(ConfigError):
            disk.zone_at(8 * MB)
        with pytest.raises(ConfigError):
            disk.zone_at(-1)

    def test_rates_monotonically_nonincreasing(self):
        disk = make_disk(64 * MB, nzones=8)
        rates = [z.rate for z in disk.zones]
        assert rates == sorted(rates, reverse=True)


class TestSeekModel:
    def test_zero_distance_is_free(self):
        assert PAPER_DISK.seek_time(100, 100) == 0.0

    def test_symmetry(self):
        assert PAPER_DISK.seek_time(0, 10 * GB) == \
            PAPER_DISK.seek_time(10 * GB, 0)

    def test_full_stroke_cost(self):
        full = PAPER_DISK.seek_time(0, PAPER_DISK.capacity)
        assert full == pytest.approx(PAPER_DISK.full_seek_s)

    def test_short_seek_near_settle(self):
        short = PAPER_DISK.seek_time(0, 4096)
        assert PAPER_DISK.settle_s <= short < PAPER_DISK.settle_s * 2

    def test_monotone_in_distance(self):
        d1 = PAPER_DISK.seek_time(0, 1 * GB)
        d2 = PAPER_DISK.seek_time(0, 100 * GB)
        d3 = PAPER_DISK.seek_time(0, 399 * GB)
        assert d1 < d2 < d3


class TestTransferModel:
    def test_transfer_time_scales_with_length(self):
        t1 = PAPER_DISK.transfer_time(0, 1 * MB)
        t2 = PAPER_DISK.transfer_time(0, 2 * MB)
        assert t2 == pytest.approx(2 * t1)

    def test_outer_faster_than_inner(self):
        outer = PAPER_DISK.transfer_time(0, 10 * MB)
        inner = PAPER_DISK.transfer_time(PAPER_DISK.capacity - 10 * MB,
                                         10 * MB)
        assert outer < inner

    def test_transfer_spanning_zones(self):
        disk = make_disk(8 * MB, nzones=2, outer_rate=2 * MB,
                         inner_rate=1 * MB)
        # 2 MB straddling the boundary: 1 MB at 2 MB/s + 1 MB at 1 MB/s.
        t = disk.transfer_time(3 * MB, 2 * MB)
        assert t == pytest.approx(0.5 + 1.0)

    def test_zero_length(self):
        assert PAPER_DISK.transfer_time(0, 0) == 0.0

    def test_negative_length_rejected(self):
        with pytest.raises(ConfigError):
            PAPER_DISK.transfer_time(0, -1)


class TestScaledDisk:
    def test_preserves_mechanics(self):
        small = scaled_disk(1 * GB)
        assert small.rpm == PAPER_DISK.rpm
        assert small.avg_seek_s == PAPER_DISK.avg_seek_s
        assert small.capacity == 1 * GB

    def test_preserves_zone_rate_range(self):
        small = scaled_disk(1 * GB)
        assert small.zones[0].rate == pytest.approx(PAPER_DISK.zones[0].rate)
        assert small.zones[-1].rate == pytest.approx(
            PAPER_DISK.zones[-1].rate
        )
