"""Tests for the coalescing free-extent index."""

import pytest

from repro.alloc.extent import Extent
from repro.alloc.freelist import FreeExtentIndex, make_free_index
from repro.alloc.naive import NaiveFreeExtentIndex
from repro.errors import ConfigError, CorruptionError


@pytest.fixture
def index():
    return FreeExtentIndex(1000)


class TestInit:
    def test_initially_free(self, index):
        assert index.total_free == 1000
        assert len(index) == 1
        assert list(index) == [Extent(0, 1000)]

    def test_initially_empty(self):
        idx = FreeExtentIndex(1000, initially_free=False)
        assert idx.total_free == 0
        assert len(idx) == 0


class TestRemoveAdd:
    def test_remove_front(self, index):
        index.remove(Extent(0, 100))
        assert list(index) == [Extent(100, 900)]

    def test_remove_middle_splits(self, index):
        index.remove(Extent(400, 100))
        assert list(index) == [Extent(0, 400), Extent(500, 500)]
        assert index.total_free == 900

    def test_remove_not_free_rejected(self, index):
        index.remove(Extent(0, 500))
        with pytest.raises(CorruptionError):
            index.remove(Extent(100, 10))

    def test_remove_straddling_rejected(self, index):
        index.remove(Extent(100, 100))
        with pytest.raises(CorruptionError):
            index.remove(Extent(150, 100))

    def test_add_coalesces_left(self, index):
        index.remove(Extent(100, 200))
        index.add(Extent(100, 100))  # touches [0,100) free run
        assert list(index) == [Extent(0, 200), Extent(300, 700)]

    def test_add_coalesces_right(self, index):
        index.remove(Extent(100, 200))
        index.add(Extent(200, 100))
        assert list(index) == [Extent(0, 100), Extent(200, 800)]

    def test_add_coalesces_both_sides(self, index):
        index.remove(Extent(100, 200))
        index.add(Extent(100, 200))
        assert list(index) == [Extent(0, 1000)]

    def test_double_free_rejected(self, index):
        with pytest.raises(CorruptionError):
            index.add(Extent(0, 10))

    def test_partial_overlap_free_rejected(self, index):
        index.remove(Extent(0, 100))
        with pytest.raises(CorruptionError):
            index.add(Extent(50, 100))

    def test_add_past_capacity_rejected(self):
        idx = FreeExtentIndex(100, initially_free=False)
        with pytest.raises(CorruptionError):
            idx.add(Extent(50, 100))


class TestQueries:
    def test_run_at(self, index):
        index.remove(Extent(100, 100))
        assert index.run_at(50) == Extent(0, 100)
        assert index.run_at(150) is None
        assert index.run_at(250) == Extent(200, 800)

    def test_run_starting_at(self, index):
        index.remove(Extent(0, 100))
        assert index.run_starting_at(100) == Extent(100, 900)
        assert index.run_starting_at(50) is None

    def test_first_fit(self, index):
        index.remove(Extent(0, 100))    # free: [100, 1000)
        index.remove(Extent(200, 700))  # free: [100,200) and [900,1000)
        assert index.first_fit(50) == Extent(100, 100)
        assert index.first_fit(150) is None
        assert index.first_fit(100, min_start=150) == Extent(900, 100)

    def test_first_fit_min_start_inside_run(self, index):
        # A run straddling min_start counts if its usable tail fits.
        assert index.first_fit(100, min_start=900) == Extent(0, 1000)
        assert index.first_fit(100, min_start=901) is None

    def test_best_fit_prefers_smallest(self, index):
        index.remove(Extent(100, 100))  # [0,100), [200,1000)
        index.remove(Extent(250, 700))  # [0,100), [200,250), [950,1000)
        assert index.best_fit(40) == Extent(200, 50)
        assert index.best_fit(60) == Extent(0, 100)
        assert index.best_fit(200) is None

    def test_best_fit_tie_lowest_address(self, index):
        index.remove(Extent(100, 100))
        index.remove(Extent(300, 100))
        index.remove(Extent(500, 500))
        # Two 100-byte runs at 200 and 400? free: [0,100),[200,300),[400,500)
        assert index.best_fit(100) == Extent(0, 100)

    def test_worst_fit_takes_largest(self, index):
        index.remove(Extent(0, 600))
        assert index.worst_fit(100) == Extent(600, 400)
        assert index.worst_fit(500) is None

    def test_next_fit_wraps(self, index):
        index.remove(Extent(100, 800))  # [0,100) and [900,1000)
        assert index.next_fit(50, cursor=500) == Extent(900, 100)
        assert index.next_fit(50, cursor=950) == Extent(900, 100)

    def test_largest(self, index):
        index.remove(Extent(0, 300))
        index.remove(Extent(400, 100))
        assert index.largest() == Extent(500, 500)

    def test_runs_by_size_desc(self, index):
        index.remove(Extent(100, 100))  # [0,100), [200,1000)
        sizes = [r.length for r in index.runs_by_size_desc()]
        assert sizes == [800, 100]


class TestInvariants:
    def test_check_invariants_clean(self, index):
        index.remove(Extent(100, 100))
        index.add(Extent(150, 10))
        index.check_invariants()

    def test_many_operations_stay_consistent(self, index):
        import random

        rng = random.Random(42)
        allocated: list[Extent] = []
        for _ in range(300):
            if allocated and rng.random() < 0.45:
                ext = allocated.pop(rng.randrange(len(allocated)))
                index.add(ext)
            else:
                size = rng.randint(1, 40)
                run = index.first_fit(size)
                if run is None:
                    continue
                taken, _ = run.take_front(size)
                index.remove(taken)
                allocated.append(taken)
            index.check_invariants()
        total = index.total_free + sum(e.length for e in allocated)
        assert total == 1000


class _CountingDict(dict):
    """Dict that counts every bulk traversal of its contents.

    Op-count instrumentation for the O(1) accounting regression: the
    naive engine recomputed ``total_free`` with ``sum(values())`` on
    every property access, so any traversal during reads is a
    regression.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.traversals = 0

    def values(self):
        self.traversals += 1
        return super().values()

    def items(self):
        self.traversals += 1
        return super().items()

    def keys(self):
        self.traversals += 1
        return super().keys()

    def __iter__(self):
        self.traversals += 1
        return super().__iter__()


class TestIncrementalAccounting:
    def test_total_free_is_o1(self):
        """Reading total_free must not traverse the per-run state."""
        index = FreeExtentIndex(1 << 16)
        for i in range(100):
            index.remove(Extent(i * 512, 256))
        counting = _CountingDict(index._len_by_start)
        index._len_by_start = counting
        expected = (1 << 16) - 100 * 256
        for _ in range(50):
            assert index.total_free == expected
        assert counting.traversals == 0

    def test_total_free_tracks_mutation(self):
        index = FreeExtentIndex(4096)
        index.remove(Extent(0, 1024))
        assert index.total_free == 3072
        index.add(Extent(0, 1024))
        assert index.total_free == 4096
        assert index.total_free == sum(e.length for e in index)


class TestFactory:
    def test_make_free_index_kinds(self):
        assert isinstance(make_free_index(1000), FreeExtentIndex)
        assert isinstance(make_free_index(1000, kind="tiered"),
                          FreeExtentIndex)
        naive = make_free_index(1000, kind="naive", initially_free=False)
        assert isinstance(naive, NaiveFreeExtentIndex)
        assert naive.total_free == 0

    def test_make_free_index_unknown_kind(self):
        with pytest.raises(ConfigError):
            make_free_index(1000, kind="bitmap")
