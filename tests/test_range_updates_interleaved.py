"""Tests for BLOB range updates (Exodus) and interleaved append loads."""

import pytest

from repro.core.interleaved import interleaved_db_load, interleaved_fs_load
from repro.db.database import DbConfig, SimDatabase
from repro.disk.device import BlockDevice
from repro.disk.geometry import scaled_disk
from repro.errors import ConfigError
from repro.fs.filesystem import FsConfig, SimFilesystem
from repro.units import KB, MB, PAGE_SIZE


def make_db(store_data=False):
    device = BlockDevice(scaled_disk(64 * MB), store_data=store_data)
    return SimDatabase(device, config=DbConfig())


class TestBlobInsertRange:
    def test_insert_grows_size(self):
        db = make_db()
        blob_id = db.put_blob(size=64 * KB)
        db.blobs.insert_range(blob_id, 8 * KB, size=16 * KB)
        assert db.blobs.size_of(blob_id) == 80 * KB

    def test_insert_at_end_is_append(self):
        db = make_db()
        blob_id = db.put_blob(size=64 * KB)
        db.blobs.insert_range(blob_id, 64 * KB, size=64 * KB)
        assert db.blobs.size_of(blob_id) == 128 * KB

    def test_content_shifts_without_moving_pages(self):
        db = make_db(store_data=True)
        before = b"A" * (32 * KB) + b"B" * (32 * KB)
        blob_id = db.put_blob(data=before)
        old_tail_pages = db.blobs.tree_of(blob_id).runs_in_range(4, 4)
        db.blobs.insert_range(blob_id, 32 * KB, data=b"X" * (8 * KB))
        got = db.get_blob(blob_id)
        assert got == b"A" * (32 * KB) + b"X" * (8 * KB) + b"B" * (32 * KB)
        # The original tail pages are still the same physical pages,
        # now one insert further along logically (the Exodus property).
        new_tail_pages = db.blobs.tree_of(blob_id).runs_in_range(5, 4)
        assert old_tail_pages == new_tail_pages

    def test_alignment_enforced(self):
        db = make_db()
        blob_id = db.put_blob(size=64 * KB)
        with pytest.raises(ConfigError):
            db.blobs.insert_range(blob_id, 100, size=PAGE_SIZE)
        with pytest.raises(ConfigError):
            db.blobs.insert_range(blob_id, PAGE_SIZE, size=100)

    def test_offset_bounds(self):
        db = make_db()
        blob_id = db.put_blob(size=64 * KB)
        with pytest.raises(ConfigError):
            db.blobs.insert_range(blob_id, 72 * KB, size=PAGE_SIZE)


class TestBlobDeleteRange:
    def test_delete_shrinks_and_shifts(self):
        db = make_db(store_data=True)
        payload = b"A" * (16 * KB) + b"B" * (16 * KB) + b"C" * (16 * KB)
        blob_id = db.put_blob(data=payload)
        db.blobs.delete_range(blob_id, 16 * KB, 16 * KB)
        assert db.blobs.size_of(blob_id) == 32 * KB
        assert db.get_blob(blob_id) == b"A" * (16 * KB) + b"C" * (16 * KB)

    def test_removed_pages_ghost_then_free(self):
        db = make_db()
        free0 = db.gam.free_page_count
        blob_id = db.put_blob(size=128 * KB)
        db.blobs.delete_range(blob_id, 0, 64 * KB)
        db.checkpoint()
        used_now = free0 - db.gam.free_page_count
        assert used_now <= (64 * KB) // PAGE_SIZE + 2  # data + node pages

    def test_alignment_and_bounds(self):
        db = make_db()
        blob_id = db.put_blob(size=64 * KB)
        with pytest.raises(ConfigError):
            db.blobs.delete_range(blob_id, 1, PAGE_SIZE)
        with pytest.raises(ConfigError):
            db.blobs.delete_range(blob_id, 0, 128 * KB)

    def test_round_trip_after_many_range_ops(self):
        db = make_db(store_data=True)
        import random

        rng = random.Random(17)
        model = bytearray(b"0" * (64 * KB))
        blob_id = db.put_blob(data=bytes(model))
        for step in range(20):
            page_len = PAGE_SIZE
            if rng.random() < 0.5 or len(model) <= page_len:
                offset = rng.randrange(0, len(model) // page_len + 1) \
                    * page_len
                payload = bytes([65 + step % 26]) * page_len
                db.blobs.insert_range(blob_id, offset, data=payload)
                model[offset:offset] = payload
            else:
                offset = rng.randrange(0, len(model) // page_len) \
                    * page_len
                db.blobs.delete_range(blob_id, offset, page_len)
                del model[offset: offset + page_len]
        assert db.get_blob(blob_id) == bytes(model)
        db.check_invariants()


class TestInterleavedLoads:
    def test_serial_fs_contiguous(self):
        fs = SimFilesystem(BlockDevice(scaled_disk(256 * MB)))
        result = interleaved_fs_load(fs, nstreams=1, object_size=1 * MB,
                                     total_objects=20)
        assert result.fragments_per_object == 1.0
        assert result.objects == 20

    def test_interleaving_fragments_fs(self):
        fs = SimFilesystem(BlockDevice(scaled_disk(256 * MB)))
        result = interleaved_fs_load(fs, nstreams=4, object_size=1 * MB,
                                     total_objects=20)
        assert result.fragments_per_object > 4.0

    def test_delayed_allocation_immune(self):
        fs = SimFilesystem(BlockDevice(scaled_disk(256 * MB)),
                           FsConfig(delayed_allocation=True))
        result = interleaved_fs_load(fs, nstreams=4, object_size=1 * MB,
                                     total_objects=20)
        assert result.fragments_per_object == 1.0

    def test_interleaving_fragments_db(self):
        db = SimDatabase(BlockDevice(scaled_disk(256 * MB)))
        serial = interleaved_db_load(db, nstreams=1, object_size=1 * MB,
                                     total_objects=10)
        db2 = SimDatabase(BlockDevice(scaled_disk(256 * MB)))
        inter = interleaved_db_load(db2, nstreams=4, object_size=1 * MB,
                                    total_objects=10)
        assert serial.fragments_per_object == 1.0
        assert inter.fragments_per_object > 4.0

    def test_object_sizes_exact(self):
        fs = SimFilesystem(BlockDevice(scaled_disk(256 * MB)))
        interleaved_fs_load(fs, nstreams=3, object_size=1 * MB + 1000,
                            total_objects=7)
        sizes = {fs.file_size(n) for n in fs.list_files()}
        assert sizes == {1 * MB + 1000}

    def test_validation(self):
        fs = SimFilesystem(BlockDevice(scaled_disk(256 * MB)))
        with pytest.raises(ConfigError):
            interleaved_fs_load(fs, nstreams=0, object_size=1 * MB,
                                total_objects=5)
