"""Property-based tests: buddy allocator, GAM, and LOB tree invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.alloc.buddy import BuddyAllocator
from repro.db.btree import LobTree
from repro.db.gam import GamAllocator
from repro.errors import AllocationError
from repro.units import KB, MB, PAGES_PER_EXTENT


# ----------------------------------------------------------------------
# Buddy allocator
# ----------------------------------------------------------------------
@given(st.lists(
    st.one_of(
        st.tuples(st.just("alloc"),
                  st.integers(min_value=1, max_value=64 * KB)),
        st.tuples(st.just("free"), st.integers(min_value=0)),
    ),
    max_size=80,
))
@settings(max_examples=100, deadline=None)
def test_buddy_tiles_volume_always(ops):
    buddy = BuddyAllocator(1 * MB, min_block=4 * KB)
    live = []
    for op, value in ops:
        if op == "alloc":
            try:
                live.append(buddy.alloc(value))
            except AllocationError:
                pass
        elif live:
            buddy.free(live.pop(value % len(live)))
    buddy.check_invariants()
    assert buddy.total_free + sum(e.length for e in live) == 1 * MB


@given(st.lists(st.integers(min_value=1, max_value=32 * KB),
                min_size=1, max_size=30))
@settings(max_examples=100, deadline=None)
def test_buddy_full_release_restores_everything(sizes):
    buddy = BuddyAllocator(1 * MB, min_block=4 * KB)
    live = []
    for size in sizes:
        try:
            live.append(buddy.alloc(size))
        except AllocationError:
            break
    for ext in live:
        buddy.free(ext)
    assert buddy.total_free == 1 * MB
    assert buddy.alloc(1 * MB).length == 1 * MB


# ----------------------------------------------------------------------
# GAM allocator
# ----------------------------------------------------------------------
@given(st.lists(
    st.one_of(
        st.tuples(st.just("pages"),
                  st.integers(min_value=1, max_value=24)),
        st.tuples(st.just("extent"), st.just(0)),
        st.tuples(st.just("free"), st.integers(min_value=0)),
    ),
    max_size=100,
))
@settings(max_examples=100, deadline=None)
def test_gam_page_accounting(ops):
    gam = GamAllocator(32)
    live: list[int] = []
    for op, value in ops:
        if op == "pages":
            try:
                live.extend(gam.alloc_pages(value))
            except AllocationError:
                pass
        elif op == "extent":
            extent_id = gam.alloc_uniform_extent()
            if extent_id is not None:
                base = extent_id * PAGES_PER_EXTENT
                live.extend(range(base, base + PAGES_PER_EXTENT))
        elif live:
            gam.free_page(live.pop(value % len(live)))
    gam.check_invariants()
    assert gam.used_page_count == len(live)
    assert len(set(live)) == len(live)  # no page handed out twice


@given(st.integers(min_value=1, max_value=255))
@settings(max_examples=40, deadline=None)
def test_gam_alloc_free_is_identity(npages):
    gam = GamAllocator(32)
    pages = gam.alloc_pages(npages)
    gam.free_pages(pages)
    gam.check_invariants()
    assert gam.free_page_count == 32 * PAGES_PER_EXTENT


# ----------------------------------------------------------------------
# LOB tree
# ----------------------------------------------------------------------
@st.composite
def tree_operations(draw):
    return draw(st.lists(
        st.one_of(
            st.tuples(st.just("insert"),
                      st.integers(min_value=0, max_value=10**6),
                      st.integers(min_value=1, max_value=8)),
            st.tuples(st.just("delete"),
                      st.integers(min_value=0, max_value=10**6),
                      st.integers(min_value=1, max_value=8)),
        ),
        max_size=80,
    ))


@given(tree_operations(),
       st.integers(min_value=4, max_value=16))
@settings(max_examples=100, deadline=None)
def test_lobtree_matches_list_model(ops, fanout):
    tree = LobTree(fanout=fanout)
    model: list[int] = []
    next_page = 0
    for op, position, count in ops:
        if op == "insert":
            pos = position % (len(model) + 1)
            tree.insert_run(pos, next_page, count)
            model[pos:pos] = range(next_page, next_page + count)
            next_page += count + 5
        elif model:
            start = position % len(model)
            take = min(count, len(model) - start)
            removed = tree.delete_range(start, take)
            flat = [
                page
                for run_start, run_count in removed
                for page in range(run_start, run_start + run_count)
            ]
            assert flat == model[start:start + take]
            del model[start:start + take]
        tree.check_invariants()
        assert tree.total_pages == len(model)
    # Final full reconstruction agrees with the model.
    pages = [
        page
        for run_start, run_count in tree.all_runs()
        for page in range(run_start, run_start + run_count)
    ]
    assert pages == model
    # And random-access lookups agree point-wise.
    for idx in range(0, len(model), max(1, len(model) // 16)):
        assert tree.page_at(idx) == model[idx]


@given(st.lists(st.integers(min_value=1, max_value=12),
                min_size=1, max_size=40))
@settings(max_examples=60, deadline=None)
def test_lobtree_append_then_read_everything(counts):
    tree = LobTree(fanout=4)
    expected: list[int] = []
    page = 0
    for count in counts:
        tree.append_run(page, count)
        expected.extend(range(page, page + count))
        page += count  # physically consecutive: must merge into 1 run
    assert tree.all_runs() == [(0, len(expected))]
    assert tree.total_pages == len(expected)
