"""Tests for the filesystem journal and deferred free reuse."""

import pytest

from repro.alloc.extent import Extent
from repro.alloc.freelist import FreeExtentIndex
from repro.disk.device import BlockDevice
from repro.disk.geometry import scaled_disk
from repro.errors import ConfigError, CorruptionError, CrashPoint
from repro.fs.journal import Journal, JournalState
from repro.units import KB, MB

RECORD = 4096


def make_journal(commit_interval=4, charge_io=True):
    device = BlockDevice(scaled_disk(16 * MB))
    index = FreeExtentIndex(16 * MB, initially_free=False)
    journal = Journal(device, index, log_base=0, log_size=1 * MB,
                      commit_interval_ops=commit_interval,
                      charge_io=charge_io)
    return journal, index, device


class TestDeferredFrees:
    def test_frees_invisible_until_commit(self):
        journal, index, _ = make_journal(commit_interval=4)
        journal.log_operation(frees=[Extent(2 * MB, 1 * MB)])
        assert index.total_free == 0
        assert journal.pending_free_bytes == 1 * MB

    def test_commit_publishes_frees(self):
        journal, index, _ = make_journal(commit_interval=100)
        journal.log_operation(frees=[Extent(2 * MB, 1 * MB)])
        journal.commit()
        assert index.total_free == 1 * MB
        assert journal.pending_free_bytes == 0

    def test_auto_commit_on_interval(self):
        journal, index, _ = make_journal(commit_interval=3)
        journal.log_operation(frees=[Extent(2 * MB, 1 * MB)])
        journal.log_operation()
        assert index.total_free == 0
        journal.log_operation()  # third op triggers the group commit
        assert index.total_free == 1 * MB
        assert journal.commits == 1

    def test_published_frees_coalesce(self):
        journal, index, _ = make_journal(commit_interval=100)
        journal.log_operation(frees=[Extent(2 * MB, 1 * MB)])
        journal.log_operation(frees=[Extent(3 * MB, 1 * MB)])
        journal.commit()
        assert list(index) == [Extent(2 * MB, 2 * MB)]

    def test_empty_commit_is_noop(self):
        journal, _, device = make_journal()
        before = device.stats.write_time_s
        journal.commit()
        assert device.stats.write_time_s == before
        assert journal.commits == 0


class TestLogIo:
    def test_commit_writes_batched_records_and_flushes(self):
        journal, _, device = make_journal(commit_interval=100)
        for _ in range(5):
            journal.log_operation()
        assert device.stats.write_bytes == 0  # buffered, like a log buffer
        journal.commit()
        assert device.stats.write_bytes == 5 * 4096
        assert device.stats.requests >= 1

    def test_charge_io_off(self):
        journal, _, device = make_journal(charge_io=False)
        for _ in range(10):
            journal.log_operation()
        journal.commit()
        assert device.stats.write_bytes == 0

    def test_log_wraps(self):
        journal, _, device = make_journal(commit_interval=1)
        # 1 MB log, 4 KB records: 256 records before wrap.
        for _ in range(300):
            journal.log_operation()
        assert device.stats.write_bytes == 300 * 4096

    def test_validation(self):
        device = BlockDevice(scaled_disk(16 * MB))
        index = FreeExtentIndex(16 * MB, initially_free=False)
        with pytest.raises(ConfigError):
            Journal(device, index, log_base=0, log_size=1 * MB,
                    commit_interval_ops=0)
        with pytest.raises(ConfigError):
            Journal(device, index, log_base=0, log_size=100)


class TestCircularWraparound:
    """Regression: a batch straddling the region's end must split into
    tail + head writes, charging exactly the batch's bytes (the old
    code reset the cursor and clamped, mischarging the I/O)."""

    def make_small_log(self, log_records: int):
        device = BlockDevice(scaled_disk(16 * MB))
        index = FreeExtentIndex(16 * MB, initially_free=False)
        journal = Journal(device, index, log_base=0,
                          log_size=log_records * RECORD,
                          commit_interval_ops=10_000)
        return journal, device

    def test_straddling_batch_splits_and_charges_exact_bytes(self):
        journal, device = self.make_small_log(16)  # 64 KB region
        for _ in range(14):
            journal.log_operation()
        journal.commit()  # cursor at 56 KB, 8 KB remain
        assert journal.log_cursor == 14 * RECORD
        bytes_before = device.stats.write_bytes
        requests_before = device.stats.requests
        for _ in range(5):
            journal.log_operation()
        journal.commit()  # 20 KB batch: 8 KB tail + 12 KB head
        assert device.stats.write_bytes - bytes_before == 5 * RECORD
        # Two record writes (tail, head) plus the forcing flush.
        assert device.stats.requests - requests_before == 3
        assert journal.log_cursor == (14 + 5) * RECORD % (16 * RECORD)

    def test_batch_larger_than_whole_region_charges_every_byte(self):
        journal, device = self.make_small_log(16)  # 64 KB region
        for _ in range(20):  # 80 KB buffered: more than one lap
            journal.log_operation()
        journal.commit()
        assert device.stats.write_bytes == 20 * RECORD
        assert journal.log_cursor == 20 * RECORD % (16 * RECORD)

    def test_exact_fit_wraps_cursor_to_zero(self):
        journal, device = self.make_small_log(8)
        for _ in range(8):
            journal.log_operation()
        journal.commit()
        assert journal.log_cursor == 0
        assert device.stats.write_bytes == 8 * RECORD

    def test_bytes_exact_across_many_wrapping_commits(self):
        journal, device = self.make_small_log(7)  # prime-ish region
        for _ in range(100):
            journal.log_operation()
            if journal.logged_ops % 5 == 0:
                journal.commit()
        journal.commit()
        assert device.stats.write_bytes == 100 * RECORD
        assert journal.log_cursor == 100 * RECORD % (7 * RECORD)


class _CountingList(list):
    """Iteration counter for the O(1) accounting regression."""

    def __init__(self, *args):
        super().__init__(*args)
        self.traversals = 0

    def __iter__(self):
        self.traversals += 1
        return super().__iter__()


class TestIncrementalPendingBytes:
    def test_pending_free_bytes_never_rescans_the_list(self):
        journal, index, _ = make_journal(commit_interval=10_000)
        for i in range(500):
            journal.log_operation(frees=[Extent(i * 2 * KB, 1 * KB)])
        counting = _CountingList(journal._pending_frees)
        journal._pending_frees = counting
        for _ in range(100):
            assert journal.pending_free_bytes == 500 * KB
        assert counting.traversals == 0
        assert journal.pending_free_count == 500

    def test_counter_tracks_commit_and_recover(self):
        journal, index, _ = make_journal(commit_interval=10_000)
        journal.log_operation(frees=[Extent(2 * MB, 1 * MB)])
        assert journal.pending_free_bytes == 1 * MB
        journal.commit()
        assert journal.pending_free_bytes == 0
        journal.log_operation(frees=[Extent(4 * MB, 1 * MB)])
        journal.recover()
        assert journal.pending_free_bytes == 0


class TestRecovery:
    def test_unforced_frees_are_discarded(self):
        journal, index, _ = make_journal(commit_interval=10_000)
        ext = Extent(2 * MB, 1 * MB)
        journal.log_operation(frees=[ext])
        report = journal.recover()
        assert report.discarded == (ext,)
        assert report.replayed == ()
        assert index.total_free == 0  # never became allocatable
        assert journal.pending_free_count == 0

    def test_forced_but_unpublished_frees_are_replayed(self):
        journal, index, _ = make_journal(commit_interval=10_000)
        ext = Extent(2 * MB, 1 * MB)
        journal.log_operation(frees=[ext])

        def crash_at_commit(label):
            raise CrashPoint(label)

        journal.crash_hook = crash_at_commit
        with pytest.raises(CrashPoint):
            journal.commit()
        # The force completed: the free is durable but unpublished.
        assert index.total_free == 0
        assert journal.replayable_frees == (ext,)
        assert journal.pending_free_bytes == 1 * MB
        journal.crash_hook = None
        report = journal.recover()
        assert report.replayed == (ext,)
        assert report.discarded == ()
        assert index.total_free == 1 * MB

    def test_recover_on_clean_journal_is_empty(self):
        journal, _, _ = make_journal()
        report = journal.recover()
        assert report.replayed == () and report.discarded == ()

    def test_commit_after_interrupted_commit_publishes(self):
        """A crashed commit's replayable frees survive a later commit."""
        journal, index, _ = make_journal(commit_interval=10_000)
        ext = Extent(2 * MB, 1 * MB)
        journal.log_operation(frees=[ext])
        journal.crash_hook = lambda label: (_ for _ in ()).throw(
            CrashPoint(label))
        with pytest.raises(CrashPoint):
            journal.commit()
        journal.crash_hook = None
        journal.commit()
        assert index.total_free == 1 * MB


class TestStateSnapshot:
    def test_round_trip(self):
        journal, index, _ = make_journal(commit_interval=10_000)
        journal.log_operation(frees=[Extent(2 * MB, 1 * MB)])
        journal.log_operation()
        state = journal.snapshot_state()
        other, _, _ = make_journal(commit_interval=10_000)
        other.restore_state(state)
        assert other.snapshot_state() == state
        assert other.pending_free_bytes == 1 * MB

    def test_restore_rejects_cursor_outside_log(self):
        journal, _, _ = make_journal()
        bad = JournalState(cursor=2 * MB, ops_since_commit=0,
                           buffered_records=0, commits=0, logged_ops=0,
                           pending=(), replayable=())
        with pytest.raises(CorruptionError):
            journal.restore_state(bad)
