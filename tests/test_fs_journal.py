"""Tests for the filesystem journal and deferred free reuse."""

import pytest

from repro.alloc.extent import Extent
from repro.alloc.freelist import FreeExtentIndex
from repro.disk.device import BlockDevice
from repro.disk.geometry import scaled_disk
from repro.errors import ConfigError
from repro.fs.journal import Journal
from repro.units import MB


def make_journal(commit_interval=4, charge_io=True):
    device = BlockDevice(scaled_disk(16 * MB))
    index = FreeExtentIndex(16 * MB, initially_free=False)
    journal = Journal(device, index, log_base=0, log_size=1 * MB,
                      commit_interval_ops=commit_interval,
                      charge_io=charge_io)
    return journal, index, device


class TestDeferredFrees:
    def test_frees_invisible_until_commit(self):
        journal, index, _ = make_journal(commit_interval=4)
        journal.log_operation(frees=[Extent(2 * MB, 1 * MB)])
        assert index.total_free == 0
        assert journal.pending_free_bytes == 1 * MB

    def test_commit_publishes_frees(self):
        journal, index, _ = make_journal(commit_interval=100)
        journal.log_operation(frees=[Extent(2 * MB, 1 * MB)])
        journal.commit()
        assert index.total_free == 1 * MB
        assert journal.pending_free_bytes == 0

    def test_auto_commit_on_interval(self):
        journal, index, _ = make_journal(commit_interval=3)
        journal.log_operation(frees=[Extent(2 * MB, 1 * MB)])
        journal.log_operation()
        assert index.total_free == 0
        journal.log_operation()  # third op triggers the group commit
        assert index.total_free == 1 * MB
        assert journal.commits == 1

    def test_published_frees_coalesce(self):
        journal, index, _ = make_journal(commit_interval=100)
        journal.log_operation(frees=[Extent(2 * MB, 1 * MB)])
        journal.log_operation(frees=[Extent(3 * MB, 1 * MB)])
        journal.commit()
        assert list(index) == [Extent(2 * MB, 2 * MB)]

    def test_empty_commit_is_noop(self):
        journal, _, device = make_journal()
        before = device.stats.write_time_s
        journal.commit()
        assert device.stats.write_time_s == before
        assert journal.commits == 0


class TestLogIo:
    def test_commit_writes_batched_records_and_flushes(self):
        journal, _, device = make_journal(commit_interval=100)
        for _ in range(5):
            journal.log_operation()
        assert device.stats.write_bytes == 0  # buffered, like a log buffer
        journal.commit()
        assert device.stats.write_bytes == 5 * 4096
        assert device.stats.requests >= 1

    def test_charge_io_off(self):
        journal, _, device = make_journal(charge_io=False)
        for _ in range(10):
            journal.log_operation()
        journal.commit()
        assert device.stats.write_bytes == 0

    def test_log_wraps(self):
        journal, _, device = make_journal(commit_interval=1)
        # 1 MB log, 4 KB records: 256 records before wrap.
        for _ in range(300):
            journal.log_operation()
        assert device.stats.write_bytes == 300 * 4096

    def test_validation(self):
        device = BlockDevice(scaled_disk(16 * MB))
        index = FreeExtentIndex(16 * MB, initially_free=False)
        with pytest.raises(ConfigError):
            Journal(device, index, log_base=0, log_size=1 * MB,
                    commit_interval_ops=0)
        with pytest.raises(ConfigError):
            Journal(device, index, log_base=0, log_size=100)
