"""Tests for the storage-age tracker (Section 4.4 of the paper)."""

import pytest

from repro.core.storage_age import StorageAgeTracker
from repro.units import MB


class TestDefinition:
    def test_fresh_volume_is_age_zero(self):
        tracker = StorageAgeTracker()
        for _ in range(10):
            tracker.on_put(10 * MB)
        assert tracker.storage_age == 0.0

    def test_safe_writes_per_object(self):
        # "In a safe-write system, storage age is ... safe writes per
        # object" — N objects each overwritten once -> age 1.
        tracker = StorageAgeTracker()
        for _ in range(10):
            tracker.on_put(10 * MB)
        for _ in range(10):
            tracker.on_overwrite(10 * MB, 10 * MB)
        assert tracker.storage_age == pytest.approx(1.0)

    def test_deletes_count_as_dead_bytes(self):
        tracker = StorageAgeTracker()
        tracker.on_put(10 * MB)
        tracker.on_put(10 * MB)
        tracker.on_delete(10 * MB)
        # 10 MB dead over 10 MB live.
        assert tracker.storage_age == pytest.approx(1.0)

    def test_size_changes_tracked(self):
        tracker = StorageAgeTracker()
        tracker.on_put(10 * MB)
        tracker.on_overwrite(10 * MB, 20 * MB)
        assert tracker.live_bytes == 20 * MB
        assert tracker.dead_bytes == 10 * MB

    def test_empty_volume_age_zero(self):
        assert StorageAgeTracker().storage_age == 0.0

    def test_volume_size_independence(self):
        # The same per-object churn produces the same age regardless of
        # object count — the property that makes ages comparable.
        small = StorageAgeTracker()
        for _ in range(5):
            small.on_put(1 * MB)
        for _ in range(10):
            small.on_overwrite(1 * MB, 1 * MB)
        large = StorageAgeTracker()
        for _ in range(500):
            large.on_put(1 * MB)
        for _ in range(1000):
            large.on_overwrite(1 * MB, 1 * MB)
        assert small.storage_age == pytest.approx(large.storage_age)


class TestPlanning:
    def test_overwrites_to_reach(self):
        tracker = StorageAgeTracker()
        for _ in range(100):
            tracker.on_put(1 * MB)
        needed = tracker.overwrites_to_reach(2.0)
        assert needed == 200

    def test_overwrites_to_reach_partial(self):
        tracker = StorageAgeTracker()
        for _ in range(100):
            tracker.on_put(1 * MB)
        for _ in range(50):
            tracker.on_overwrite(1 * MB, 1 * MB)
        assert tracker.overwrites_to_reach(1.0) == 50

    def test_target_already_reached(self):
        tracker = StorageAgeTracker()
        tracker.on_put(1 * MB)
        tracker.on_overwrite(1 * MB, 1 * MB)
        assert tracker.overwrites_to_reach(0.5) == 0

    def test_explicit_mean_size(self):
        tracker = StorageAgeTracker()
        for _ in range(10):
            tracker.on_put(2 * MB)
        assert tracker.overwrites_to_reach(
            1.0, mean_object_size=2 * MB
        ) == 10


class TestCounters:
    def test_event_counts(self):
        tracker = StorageAgeTracker()
        tracker.on_put(1)
        tracker.on_overwrite(1, 1)
        tracker.on_delete(1)
        assert (tracker.puts, tracker.overwrites, tracker.deletes) == \
            (1, 1, 1)

    def test_history(self):
        tracker = StorageAgeTracker()
        tracker.on_put(1 * MB)
        tracker.record_history()
        tracker.on_overwrite(1 * MB, 1 * MB)
        tracker.record_history()
        ages = [age for _, age in tracker.history]
        assert ages == [0.0, 1.0]
