"""Tests for size distributions and workload phases."""

import pytest

from repro.core.workload import (
    ConstantSize,
    UniformSize,
    WorkloadSpec,
    bulk_load,
    churn_step,
    churn_to_age,
    delete_all,
    read_sweep,
)
from repro.errors import ConfigError
from repro.rng import substream
from repro.units import KB, MB


class TestDistributions:
    def test_constant(self):
        dist = ConstantSize(256 * KB)
        rng = substream(1, "t")
        assert dist.mean == 256 * KB
        assert {dist.draw(rng) for _ in range(10)} == {256 * KB}

    def test_constant_validation(self):
        with pytest.raises(ConfigError):
            ConstantSize(0)

    def test_uniform_bounds(self):
        dist = UniformSize(1 * MB, 3 * MB)
        rng = substream(2, "t")
        draws = [dist.draw(rng) for _ in range(200)]
        assert all(1 * MB <= d <= 3 * MB for d in draws)
        assert all(d % KB == 0 for d in draws)

    def test_uniform_mean(self):
        dist = UniformSize.around_mean(10 * MB, spread=0.8)
        assert dist.lo == 2 * MB
        assert dist.hi == 18 * MB
        assert dist.mean == pytest.approx(10 * MB)
        rng = substream(3, "t")
        draws = [dist.draw(rng) for _ in range(2000)]
        empirical = sum(draws) / len(draws)
        assert empirical == pytest.approx(10 * MB, rel=0.05)

    def test_uniform_validation(self):
        with pytest.raises(ConfigError):
            UniformSize(0, 100)
        with pytest.raises(ConfigError):
            UniformSize(100, 50)
        with pytest.raises(ConfigError):
            UniformSize.around_mean(1 * MB, spread=1.5)

    def test_labels(self):
        assert str(ConstantSize(256 * KB)) == "constant(256K)"
        assert "uniform" in str(UniformSize(1 * MB, 3 * MB))

    def test_uniform_rounding_is_unbiased(self):
        # Floor rounding would pull the realized mean ~0.5 KB below the
        # declared mean; nearest-KB rounding keeps the error well under
        # 0.1 KB over a large sample.  10k draws from a 64K..192K range
        # have a standard error ~0.37 KB, so a 0.5 KB floor bias would
        # show up many sigma away while nearest rounding stays within
        # ~3 sigma of zero.
        dist = UniformSize(64 * KB, 192 * KB)
        rng = substream(11, "bias")
        n = 40_000
        total = sum(dist.draw(rng) for _ in range(n))
        bias_kb = (total / n - dist.mean) / KB
        assert abs(bias_kb) < 0.25, f"realized-mean bias {bias_kb:.3f} KB"

    def test_uniform_rounds_to_nearest(self):
        # lo == hi pins the raw draw, so rounding is directly visible.
        rng = substream(12, "round")
        assert UniformSize(10 * KB + 700, 10 * KB + 700).draw(rng) == 11 * KB
        assert UniformSize(10 * KB + 100, 10 * KB + 100).draw(rng) == 10 * KB
        # Sub-KB draws clamp up to the 1 KB minimum.
        assert UniformSize(1, 1).draw(rng) == 1 * KB


class TestBulkLoad:
    def test_reaches_target_occupancy(self, file_store):
        spec = WorkloadSpec(sizes=ConstantSize(1 * MB),
                            target_occupancy=0.5)
        state = bulk_load(file_store, spec, substream(4, "w"))
        stats = file_store.store_stats()
        assert 0.40 <= stats.occupancy <= 0.55
        assert len(state.keys) == stats.objects
        assert state.tracker.storage_age == 0.0

    def test_deterministic_under_seed(self):
        from repro.backends.file_backend import FileBackend
        from repro.disk.device import BlockDevice
        from repro.disk.geometry import scaled_disk

        def run():
            store = FileBackend(BlockDevice(scaled_disk(32 * MB)))
            spec = WorkloadSpec(sizes=UniformSize(256 * KB, 1 * MB),
                                target_occupancy=0.5)
            state = bulk_load(store, spec, substream(7, "w"))
            return [store.meta(k).size for k in state.keys]

        assert run() == run()

    def test_volume_too_small(self):
        from repro.backends.file_backend import FileBackend
        from repro.disk.device import BlockDevice
        from repro.disk.geometry import scaled_disk

        store = FileBackend(BlockDevice(scaled_disk(16 * MB)))
        spec = WorkloadSpec(sizes=ConstantSize(32 * MB),
                            target_occupancy=0.9)
        with pytest.raises(ConfigError):
            bulk_load(store, spec, substream(1, "w"))

    def test_occupancy_validation(self):
        with pytest.raises(ConfigError):
            WorkloadSpec(sizes=ConstantSize(1 * MB), target_occupancy=1.5)


class TestChurn:
    def test_step_replaces_one_object(self, file_store):
        spec = WorkloadSpec(sizes=ConstantSize(512 * KB),
                            target_occupancy=0.4)
        state = bulk_load(file_store, spec, substream(5, "w"))
        key = churn_step(file_store, state)
        assert key in state.keys
        assert state.tracker.overwrites == 1
        assert state.bytes_overwritten == 512 * KB

    def test_churn_to_age_reaches_target(self, file_store):
        spec = WorkloadSpec(sizes=ConstantSize(512 * KB),
                            target_occupancy=0.4)
        state = bulk_load(file_store, spec, substream(5, "w"))
        steps = churn_to_age(file_store, state, 2.0)
        assert state.tracker.storage_age >= 2.0
        assert steps == state.tracker.overwrites

    def test_churn_preserves_object_count(self, file_store):
        spec = WorkloadSpec(sizes=ConstantSize(512 * KB),
                            target_occupancy=0.4)
        state = bulk_load(file_store, spec, substream(5, "w"))
        n = len(state.keys)
        churn_to_age(file_store, state, 1.0)
        assert file_store.store_stats().objects == n

    def test_on_step_callback(self, file_store):
        spec = WorkloadSpec(sizes=ConstantSize(512 * KB),
                            target_occupancy=0.4)
        state = bulk_load(file_store, spec, substream(5, "w"))
        seen = []
        churn_to_age(file_store, state, 0.5, on_step=seen.append)
        assert seen == list(range(1, len(seen) + 1))


class TestReadSweep:
    def test_reads_requested_count(self, file_store):
        spec = WorkloadSpec(sizes=ConstantSize(512 * KB),
                            target_occupancy=0.4)
        state = bulk_load(file_store, spec, substream(5, "w"))
        total = read_sweep(file_store, state, 10)
        assert total == 10 * 512 * KB

    def test_dedicated_rng_leaves_churn_untouched(self, file_store):
        spec = WorkloadSpec(sizes=ConstantSize(512 * KB),
                            target_occupancy=0.4)
        state = bulk_load(file_store, spec, substream(5, "w"))
        churn_rng_state = state.rng.getstate()
        read_sweep(file_store, state, 5, rng=substream(6, "r"))
        assert state.rng.getstate() == churn_rng_state

    def test_validation(self, file_store):
        spec = WorkloadSpec(sizes=ConstantSize(512 * KB),
                            target_occupancy=0.4)
        state = bulk_load(file_store, spec, substream(5, "w"))
        with pytest.raises(ConfigError):
            read_sweep(file_store, state, 0)


class TestDeleteAll:
    def test_everything_removed(self, file_store):
        spec = WorkloadSpec(sizes=ConstantSize(512 * KB),
                            target_occupancy=0.4)
        state = bulk_load(file_store, spec, substream(5, "w"))
        n = len(state.keys)
        delete_all(file_store, state)
        assert file_store.store_stats().objects == 0
        assert state.tracker.deletes == n
        assert state.keys == []
        assert state.tracker.live_bytes == 0

    def test_versions_reset_for_fresh_puts(self, content_file_store):
        # A key re-put after delete-all must restart marker versions at
        # 1 — the old counter leaking through would disguise a stale
        # resurrected object as fresh content.
        spec = WorkloadSpec(sizes=ConstantSize(64 * KB),
                            target_occupancy=0.2, with_content=True)
        state = bulk_load(content_file_store, spec, substream(5, "w"))
        churn_step(content_file_store, state)  # bump some version past 1
        assert max(state.versions.values()) >= 2
        delete_all(content_file_store, state)
        assert state.versions == {}


class TestObjectIdOf:
    def _state(self):
        from repro.core.workload import WorkloadState
        spec = WorkloadSpec(sizes=ConstantSize(64 * KB))
        return WorkloadState(spec=spec, rng=substream(1, "id"))

    def test_parses_trailing_integer(self):
        state = self._state()
        assert state.object_id_of("object-7") == 7
        assert state.object_id_of("tenant-3-object-7") == 7
        assert state.object_id_of("t-0-object-123") == 123

    def test_rejects_malformed_keys(self):
        state = self._state()
        for bad in ("object", "object-", "object-x", "7", "object-7x",
                    "object-٧"):
            with pytest.raises(ConfigError):
                state.object_id_of(bad)


class TestMarkerContentMode:
    def test_with_content_round_trips(self, content_file_store):
        spec = WorkloadSpec(sizes=ConstantSize(64 * KB),
                            target_occupancy=0.2, with_content=True)
        state = bulk_load(content_file_store, spec, substream(5, "w"))
        key = state.keys[0]
        data = content_file_store.get(key)
        assert data is not None
        assert data.startswith(b"FRAG")
