"""Tests for the BLOB store and the database facade."""

import pytest

from repro.alloc.extent import coalesce
from repro.db.database import DbConfig, SimDatabase
from repro.disk.device import BlockDevice
from repro.disk.geometry import scaled_disk
from repro.errors import BlobNotFoundError, ConfigError
from repro.units import KB, MB, PAGE_SIZE


def make_db(capacity=64 * MB, store_data=False, **cfg):
    device = BlockDevice(scaled_disk(capacity), store_data=store_data)
    return SimDatabase(device, config=DbConfig(**cfg))


class TestPutGet:
    def test_put_returns_increasing_ids(self):
        db = make_db()
        a = db.put_blob(size=256 * KB)
        b = db.put_blob(size=256 * KB)
        assert b > a

    def test_size_tracked(self):
        db = make_db()
        blob_id = db.put_blob(size=100 * KB)
        assert db.blobs.size_of(blob_id) == 100 * KB

    def test_content_round_trip(self):
        db = make_db(store_data=True)
        payload = bytes(range(256)) * 200
        blob_id = db.put_blob(data=payload)
        assert db.get_blob(blob_id) == payload

    def test_range_read(self):
        db = make_db(store_data=True)
        payload = b"".join(bytes([i] * 1024) for i in range(64))
        blob_id = db.put_blob(data=payload)
        assert db.get_blob(blob_id, offset=10 * 1024, length=2048) == \
            payload[10 * 1024: 12 * 1024]

    def test_unaligned_size_round_trip(self):
        db = make_db(store_data=True)
        payload = b"x" * (100 * KB + 123)
        blob_id = db.put_blob(data=payload)
        assert db.get_blob(blob_id) == payload

    def test_range_validation(self):
        db = make_db()
        blob_id = db.put_blob(size=64 * KB)
        with pytest.raises(ConfigError):
            db.get_blob(blob_id, offset=0, length=65 * KB)

    def test_missing_blob(self):
        db = make_db()
        with pytest.raises(BlobNotFoundError):
            db.get_blob(42)

    def test_bulk_load_contiguous(self):
        db = make_db()
        blob_id = db.put_blob(size=1 * MB)
        extents = db.blobs.blob_extents(blob_id)
        assert len(coalesce(extents)) == 1

    def test_write_request_must_be_page_aligned(self):
        with pytest.raises(ConfigError):
            make_db(write_request=100 * KB)  # not an 8 KB multiple


class TestDelete:
    def test_delete_ghosts_then_frees(self):
        db = make_db(ghost_cleanup_interval_ops=4,
                     ghost_max_pages_per_sweep=None, ghost_min_age_ops=0)
        blob_id = db.put_blob(size=1 * MB)
        used_before = db.gam.used_page_count
        db.delete_blob(blob_id)
        # Data pages stay ghost (only the LOB tree's node pages free
        # immediately), so nearly everything is still charged.
        assert db.gam.used_page_count >= used_before - 4
        for _ in range(8):
            db.ghost.on_operation()
        data_pages = (1 * MB) // PAGE_SIZE
        assert db.gam.used_page_count <= used_before - data_pages

    def test_delete_then_get_raises(self):
        db = make_db()
        blob_id = db.put_blob(size=64 * KB)
        db.delete_blob(blob_id)
        with pytest.raises(BlobNotFoundError):
            db.get_blob(blob_id)

    def test_space_fully_recovered_after_checkpoint(self):
        db = make_db()
        free0 = db.gam.free_page_count
        ids = [db.put_blob(size=256 * KB) for _ in range(10)]
        for blob_id in ids:
            db.delete_blob(blob_id)
        db.checkpoint()
        assert db.gam.free_page_count == free0

    def test_node_pages_freed_on_delete(self):
        db = make_db(lob_fanout=128)
        free0 = db.gam.free_page_count
        blob_id = db.put_blob(size=2 * MB)
        db.delete_blob(blob_id)
        db.checkpoint()
        assert db.gam.free_page_count == free0


class TestReplace:
    def test_replace_swaps_content(self):
        db = make_db(store_data=True)
        blob_id = db.put_blob(data=b"A" * 32 * KB)
        new_id = db.replace_blob(blob_id, data=b"B" * 32 * KB)
        assert db.get_blob(new_id) == b"B" * 32 * KB
        with pytest.raises(BlobNotFoundError):
            db.get_blob(blob_id)

    def test_replace_allocates_before_freeing(self):
        # The new value lands in fresh pages; the old ones ghost — the
        # safe-update ordering that drives the mixing frontier.
        db = make_db()
        blob_id = db.put_blob(size=256 * KB)
        old_extents = db.blobs.blob_extents(blob_id)
        new_id = db.replace_blob(blob_id, size=256 * KB)
        new_extents = db.blobs.blob_extents(new_id)
        for old in old_extents:
            for new in new_extents:
                assert not old.overlaps(new)


class TestAllocationPressure:
    def test_ghost_backlog_swept_under_pressure(self):
        db = make_db(capacity=16 * MB, ghost_cleanup_interval_ops=1000,
                     ghost_min_age_ops=10_000,
                     ghost_max_pages_per_sweep=1)
        # Fill most of the file, delete everything (all ghost), then
        # allocate again: the put must force cleanup rather than fail.
        ids = [db.put_blob(size=2 * MB) for _ in range(6)]
        for blob_id in ids:
            db.delete_blob(blob_id)
        blob_id = db.put_blob(size=4 * MB)
        assert db.blobs.size_of(blob_id) == 4 * MB


class TestIoAccounting:
    def test_put_charges_data_writes(self):
        db = make_db()
        before = db.data_device.stats.write_bytes
        db.put_blob(size=1 * MB, commit=False)
        written = db.data_device.stats.write_bytes - before
        assert written >= 1 * MB
        assert written <= 1 * MB + 16 * PAGE_SIZE

    def test_commit_forces_log_and_data(self):
        db = make_db()
        db.put_blob(size=64 * KB, commit=False)
        log_before = db.log_device.stats.requests
        db.commit()
        assert db.log_device.stats.requests > log_before

    def test_bulk_logged_log_volume_small(self):
        db = make_db()
        db.put_blob(size=4 * MB)
        assert db.log_device.stats.write_bytes < 64 * KB

    def test_get_charges_reads(self):
        db = make_db()
        blob_id = db.put_blob(size=1 * MB)
        before = db.data_device.stats.read_bytes
        db.get_blob(blob_id)
        assert db.data_device.stats.read_bytes - before >= 1 * MB


class TestTables:
    def test_create_and_fetch(self):
        db = make_db()
        table = db.create_table("meta")
        assert db.table("meta") is table
        with pytest.raises(ConfigError):
            db.create_table("meta")
        with pytest.raises(ConfigError):
            db.table("missing")


class TestInvariants:
    def test_churn_preserves_consistency(self):
        import random

        rng = random.Random(3)
        db = make_db(capacity=32 * MB)
        live = [db.put_blob(size=256 * KB) for _ in range(20)]
        for _ in range(100):
            victim = live.pop(rng.randrange(len(live)))
            live.append(db.replace_blob(victim, size=256 * KB))
        db.check_invariants()
        for blob_id in live:
            assert db.blobs.size_of(blob_id) == 256 * KB

    def test_occupancy(self):
        db = make_db()
        occ0 = db.occupancy()
        db.put_blob(size=8 * MB)
        assert db.occupancy() > occ0
