"""Checkpoint/resume of aging runs: killed and resumed == uninterrupted.

The acceptance bar: an aging run checkpointed mid-way, killed, and
resumed produces a run record *identical* to the same run uninterrupted
— every sample (fragmentation metrics, read/write throughput over
modelled IoStats, occupancy, seek counts), across both free-space
engines and a 3-shard composite.  Plus the failure half: checkpoints
from a different configuration are refused, torn checkpoints fall back
to the previous valid one, and a fully torn directory falls back to a
fresh (still identical) run.
"""

import pytest

from repro.backends.spec import StoreSpec
from repro.core.experiment import (
    ExperimentConfig,
    ExperimentRunner,
    run_experiment,
)
from repro.core.workload import ConstantSize
from repro.errors import ConfigError
from repro.persist import CheckpointManager
from repro.units import KB, MB

AGES = (0.0, 1.0, 2.0)


def config_for(store_kind: str, seed: int = 11) -> ExperimentConfig:
    specs = {
        "tiered": StoreSpec("filesystem", volume_bytes=64 * MB),
        "naive": StoreSpec("filesystem", volume_bytes=64 * MB,
                           options={"index_kind": "naive"}),
        "sharded": StoreSpec("filesystem", volume_bytes=96 * MB, shards=3),
    }
    return ExperimentConfig(
        store=specs[store_kind],
        sizes=ConstantSize(256 * KB),
        occupancy=0.4,
        ages=AGES,
        reads_per_sample=8,
        seed=seed,
    )


class _Killed(Exception):
    """Stands in for SIGKILL right after a checkpoint lands."""


def run_interrupted(config: ExperimentConfig, directory,
                    kill_after_age: float) -> None:
    """Run with checkpoints; die immediately after one is written."""
    def killer(phase: str, value: float) -> None:
        if phase == "checkpoint" and value == kill_after_age:
            raise _Killed

    runner = ExperimentRunner(config, progress=killer,
                              checkpoint_dir=directory)
    with pytest.raises(_Killed):
        runner.run()


class TestResumeIdentity:
    @pytest.mark.parametrize("store_kind", ["tiered", "naive", "sharded"])
    @pytest.mark.parametrize("kill_after_age", [0.0, 1.0])
    def test_killed_and_resumed_equals_uninterrupted(
            self, tmp_path, store_kind, kill_after_age):
        config = config_for(store_kind)
        baseline = ExperimentRunner(config).run()
        run_interrupted(config, tmp_path, kill_after_age)
        resumed = ExperimentRunner(config, checkpoint_dir=tmp_path,
                                   resume=True).run()
        # Full record equality: config echo, bulk-load stats, and every
        # sample's fragmentation/throughput/occupancy/seek numbers.
        assert resumed.to_dict() == baseline.to_dict()

    def test_completed_run_resumes_to_identical_record(self, tmp_path):
        """Resuming a finished run re-runs nothing and matches."""
        config = config_for("tiered")
        first = run_experiment(config, checkpoint_dir=tmp_path)
        again = run_experiment(config, checkpoint_dir=tmp_path, resume=True)
        assert again.to_dict() == first.to_dict()

    def test_resume_without_checkpoint_runs_fresh(self, tmp_path):
        config = config_for("tiered")
        baseline = ExperimentRunner(config).run()
        fresh = run_experiment(config, checkpoint_dir=tmp_path / "empty",
                               resume=True)
        assert fresh.to_dict() == baseline.to_dict()


class TestCheckpointContents:
    def test_per_shard_snapshot_files(self, tmp_path):
        config = config_for("sharded")
        run_interrupted(config, tmp_path, kill_after_age=0.0)
        ckpt = CheckpointManager(tmp_path).load_latest()
        assert ckpt is not None
        names = set(ckpt.names())
        assert "state.pkl" in names
        for i in range(3):
            assert f"free_index-shard{i}.bin" in names
            assert f"journal-shard{i}.bin" in names
        assert ckpt.meta["done_ages"] == [0.0]

    def test_single_volume_snapshot_files(self, tmp_path):
        config = config_for("tiered")
        run_interrupted(config, tmp_path, kill_after_age=0.0)
        ckpt = CheckpointManager(tmp_path).load_latest()
        assert {"state.pkl", "free_index-vol0.bin",
                "journal-vol0.bin"} <= set(ckpt.names())


class TestResumeFailureModes:
    def test_config_mismatch_is_refused(self, tmp_path):
        run_interrupted(config_for("tiered"), tmp_path, kill_after_age=0.0)
        other = config_for("tiered", seed=99)
        with pytest.raises(ConfigError):
            run_experiment(other, checkpoint_dir=tmp_path, resume=True)

    def test_torn_latest_falls_back_to_previous(self, tmp_path):
        """Corrupting the newest checkpoint resumes from the older one
        — and still reproduces the uninterrupted record exactly."""
        config = config_for("tiered")
        baseline = ExperimentRunner(config).run()
        run_interrupted(config, tmp_path, kill_after_age=1.0)
        manager = CheckpointManager(tmp_path)
        published = manager._published()
        assert len(published) == 2  # ages 0.0 and 1.0
        newest = published[-1][1]
        blob = (newest / "free_index-vol0.bin").read_bytes()
        (newest / "free_index-vol0.bin").write_bytes(blob[: len(blob) // 2])
        resumed = run_experiment(config, checkpoint_dir=tmp_path,
                                 resume=True)
        assert resumed.to_dict() == baseline.to_dict()

    def test_everything_torn_falls_back_to_fresh(self, tmp_path):
        config = config_for("tiered")
        baseline = ExperimentRunner(config).run()
        run_interrupted(config, tmp_path, kill_after_age=0.0)
        for _, path in CheckpointManager(tmp_path)._published():
            (path / "state.pkl").write_bytes(b"scribble")
        resumed = run_experiment(config, checkpoint_dir=tmp_path,
                                 resume=True)
        assert resumed.to_dict() == baseline.to_dict()

    def test_pickle_and_snapshot_divergence_is_refused(self, tmp_path):
        """A checkpoint whose digests verify but whose snapshot
        disagrees with the pickled state is real corruption, not a torn
        write — resume must refuse it loudly rather than mount it."""
        config = config_for("tiered")
        run_interrupted(config, tmp_path, kill_after_age=0.0)
        manager = CheckpointManager(tmp_path)
        ckpt = manager.load_latest()
        # Swap in a *valid* snapshot of a different (empty) free map,
        # rewriting the manifest so digests still verify.
        from repro.alloc.freelist import make_free_index
        from repro.persist import encode_free_index
        import hashlib as _hashlib
        import json as _json
        alien = encode_free_index(
            make_free_index(64 * MB, initially_free=False))
        (ckpt.path / "free_index-vol0.bin").write_bytes(alien)
        manifest = _json.loads((ckpt.path / "MANIFEST.json").read_text())
        manifest["files"]["free_index-vol0.bin"] = {
            "sha256": _hashlib.sha256(alien).hexdigest(),
            "bytes": len(alien),
        }
        (ckpt.path / "MANIFEST.json").write_text(_json.dumps(manifest))
        from repro.errors import SnapshotError
        with pytest.raises(SnapshotError):
            run_experiment(config, checkpoint_dir=tmp_path, resume=True)


class TestCrashDuringRestore:
    def test_crash_mid_restore_then_retry_is_identical(
            self, tmp_path, monkeypatch):
        """A crash inside the restore path (satellite: 'during restore')
        mutates nothing: the retried resume mounts the same checkpoint
        and still reproduces the uninterrupted record exactly."""
        import repro.core.experiment as experiment_module
        from repro.errors import CrashPoint

        config = config_for("tiered")
        baseline = ExperimentRunner(config).run()
        run_interrupted(config, tmp_path, kill_after_age=1.0)

        real_cross_check = experiment_module.cross_check
        calls = {"n": 0}

        def dying_cross_check(*args, **kwargs):
            calls["n"] += 1
            if calls["n"] == 1:
                raise CrashPoint("injected crash during restore")
            return real_cross_check(*args, **kwargs)

        monkeypatch.setattr(experiment_module, "cross_check",
                            dying_cross_check)
        runner = ExperimentRunner(config, checkpoint_dir=tmp_path,
                                  resume=True)
        with pytest.raises(CrashPoint):
            runner.run()
        # The failed restore left the runner unmounted ...
        assert runner.store is None and runner.state is None
        monkeypatch.setattr(experiment_module, "cross_check",
                            real_cross_check)
        # ... and a retry (a fresh process in real life) matches exactly.
        resumed = ExperimentRunner(config, checkpoint_dir=tmp_path,
                                   resume=True).run()
        assert resumed.to_dict() == baseline.to_dict()


class TestChargedContinuousResume:
    """Delta chains + charged checkpoint I/O: the continuous-operation
    configuration.  With ``checkpoint_rate > 0`` the write-back of each
    checkpoint is part of the modelled run (it perturbs device clocks
    and the event-queue timeline), so resume must reproduce not just
    the samples but the charging — including the lag-one byte count the
    next checkpoint will charge for."""

    def config(self) -> ExperimentConfig:
        spec = StoreSpec(
            "filesystem", volume_bytes=96 * MB, shards=3, overlap=True,
            queue="event", queue_depth=16,
            arrival="poisson:rate=400:seed=7",
            checkpoint_rate=0.5,
        )
        return ExperimentConfig(
            store=spec,
            sizes=ConstantSize(256 * KB),
            occupancy=0.4,
            ages=AGES,
            reads_per_sample=8,
            seed=13,
        )

    def chain_links(self, directory) -> list:
        manager = CheckpointManager(directory)
        return [manager._manifest_parent_seq(path)
                for _, path in manager._published()]

    @pytest.mark.parametrize("kill_after_age", [0.0, 1.0])
    def test_killed_and_resumed_through_a_delta_chain(
            self, tmp_path, kill_after_age):
        config = self.config()
        # The baseline checkpoints too: charged checkpoint I/O is part
        # of the run being modelled, not an observer effect.
        baseline = run_experiment(config, checkpoint_dir=tmp_path / "base")
        run_interrupted(config, tmp_path / "kill", kill_after_age)
        resumed = run_experiment(config, checkpoint_dir=tmp_path / "kill",
                                 resume=True)
        assert resumed.to_dict() == baseline.to_dict()
        # Non-vacuity: the default full_interval=4 really chained the
        # checkpoints the resume replayed through.
        links = self.chain_links(tmp_path / "kill")
        assert any(link is not None for link in links)

    def test_charged_checkpoints_perturb_the_run(self, tmp_path):
        """checkpoint_rate=0 must keep the historical uncharged record;
        turning it on must visibly change the modelled run."""
        from dataclasses import replace as dc_replace

        charged_cfg = self.config()
        uncharged_cfg = dc_replace(
            charged_cfg, store=dc_replace(charged_cfg.store,
                                          checkpoint_rate=0.0))
        observer_free = ExperimentRunner(uncharged_cfg).run()
        uncharged = run_experiment(uncharged_cfg,
                                   checkpoint_dir=tmp_path / "u")
        charged = run_experiment(charged_cfg, checkpoint_dir=tmp_path / "c")
        base = observer_free.to_dict()
        assert uncharged.to_dict() == base  # rate 0: observer effect off
        assert charged.to_dict() != base    # rate > 0: I/O is charged


class TestCliFlags:
    def test_run_checkpoint_and_resume(self, tmp_path, capsys):
        from repro.cli import main
        args = ["run", "--backend", "filesystem", "--volume", "64M",
                "--object-size", "256K", "--occupancy", "0.4",
                "--ages", "0,1", "--reads", "4",
                "--checkpoint-dir", str(tmp_path / "ck")]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert main(args + ["--resume"]) == 0
        second = capsys.readouterr().out
        assert first == second  # resumed tables identical
        assert CheckpointManager(tmp_path / "ck").load_latest() is not None

    def test_resume_requires_checkpoint_dir(self):
        from repro.cli import main
        with pytest.raises(SystemExit):
            main(["run", "--backend", "filesystem", "--resume"])

    def test_checkpoint_keep_flag_controls_retention(self, tmp_path):
        from repro.cli import main
        args = ["run", "--backend", "filesystem", "--volume", "64M",
                "--object-size", "256K", "--occupancy", "0.4",
                "--ages", "0,1,2", "--reads", "4",
                "--checkpoint-dir", str(tmp_path / "ck"),
                "--checkpoint-keep", "3",
                "--checkpoint-full-interval", "1"]
        assert main(args) == 0
        published = CheckpointManager(tmp_path / "ck")._published()
        assert len(published) == 3  # one per age, all retained

    def test_keep_validated_against_cadence(self, tmp_path):
        """keep=1 cannot retain the fallback a delta chain needs."""
        from repro.cli import main
        args = ["run", "--backend", "filesystem", "--volume", "64M",
                "--object-size", "256K", "--occupancy", "0.4",
                "--ages", "0,1", "--reads", "4",
                "--checkpoint-dir", str(tmp_path / "ck"),
                "--checkpoint-keep", "1"]
        with pytest.raises(ConfigError, match="keep must be >= 2"):
            main(args)

    def test_keep_plumbed_through_run_experiment(self, tmp_path):
        config = config_for("tiered")
        run_experiment(config, checkpoint_dir=tmp_path,
                       checkpoint_keep=3, checkpoint_full_interval=1)
        assert len(CheckpointManager(tmp_path)._published()) == 3
