"""Tests for the block device: service times, head tracking, content."""

import pytest

from repro.alloc.extent import Extent
from repro.disk.device import BlockDevice
from repro.disk.geometry import make_disk, scaled_disk
from repro.errors import ConfigError
from repro.units import KB, MB


@pytest.fixture
def dev():
    return BlockDevice(scaled_disk(64 * MB))


class TestServiceModel:
    def test_random_read_charges_seek_and_rotation(self, dev):
        dev.read(32 * MB, 64 * KB)
        stats = dev.stats
        assert stats.seeks == 1
        geometry = dev.geometry
        floor = (geometry.settle_s + geometry.avg_rotational_latency_s
                 + geometry.per_request_overhead_s)
        assert stats.read_time_s > floor

    def test_sequential_read_avoids_second_seek(self, dev):
        dev.read(1 * MB, 64 * KB)
        dev.read(1 * MB + 64 * KB, 64 * KB)  # continues at head position
        assert dev.stats.seeks == 1

    def test_small_forward_gap_is_sequential(self, dev):
        dev.read(1 * MB, 64 * KB)
        dev.read(1 * MB + 80 * KB, 16 * KB)  # within track-buffer window
        assert dev.stats.seeks == 1

    def test_initial_access_at_head_position_is_free(self, dev):
        dev.read(0, 64 * KB)  # head parks at 0; no seek charged
        assert dev.stats.seeks == 0

    def test_backward_gap_seeks(self, dev):
        dev.read(1 * MB, 64 * KB)
        dev.read(0, 64 * KB)
        assert dev.stats.seeks == 2

    def test_fragmented_request_costs_one_seek_per_fragment(self, dev):
        contiguous = BlockDevice(dev.geometry)
        contiguous.read_extents([Extent(4 * MB, 256 * KB)])
        fragmented = BlockDevice(dev.geometry)
        fragmented.read_extents([
            Extent(4 * MB, 64 * KB),
            Extent(8 * MB, 64 * KB),
            Extent(16 * MB, 64 * KB),
            Extent(24 * MB, 64 * KB),
        ])
        assert fragmented.stats.seeks == 4
        assert contiguous.stats.seeks == 1
        assert fragmented.stats.read_time_s > \
            contiguous.stats.read_time_s * 2

    def test_write_and_read_accounted_separately(self, dev):
        dev.write(0, 1 * MB)
        dev.read(0, 2 * MB)
        assert dev.stats.write_bytes == 1 * MB
        assert dev.stats.read_bytes == 2 * MB
        assert dev.stats.write_time_s > 0
        assert dev.stats.read_time_s > 0

    def test_flush_costs_a_rotation(self, dev):
        before = dev.stats.write_time_s
        dev.flush()
        assert dev.stats.write_time_s - before == pytest.approx(
            dev.geometry.rotation_s
        )

    def test_clock_accumulates(self, dev):
        assert dev.clock_s == 0.0
        dev.read(0, 1 * MB)
        t1 = dev.clock_s
        dev.write(32 * MB, 1 * MB)
        assert dev.clock_s > t1

    def test_extent_outside_volume_rejected(self, dev):
        with pytest.raises(ConfigError):
            dev.read(64 * MB - 1024, 64 * KB)

    def test_throughput_of_sequential_stream_approaches_media_rate(self):
        disk = make_disk(64 * MB, nzones=1, outer_rate=50 * MB,
                         inner_rate=50 * MB)
        dev = BlockDevice(disk)
        for i in range(64):
            dev.write(i * MB, 1 * MB)
        rate = dev.stats.write_bytes / dev.stats.write_time_s
        assert rate == pytest.approx(50 * MB, rel=0.05)


class TestHeadTracking:
    def test_head_moves_to_end_of_request(self, dev):
        dev.read(1 * MB, 64 * KB)
        assert dev.head_position == 1 * MB + 64 * KB

    def test_multi_extent_head_at_last(self, dev):
        dev.read_extents([Extent(0, KB), Extent(2 * MB, KB)])
        assert dev.head_position == 2 * MB + KB


class TestContentStore:
    def test_timing_only_device_returns_none(self, dev):
        dev.write(0, 1024)
        assert dev.read(0, 1024) is None

    def test_round_trip(self):
        dev = BlockDevice(scaled_disk(4 * MB), store_data=True)
        payload = bytes(range(256)) * 4
        dev.write(4096, len(payload), payload)
        assert dev.read(4096, len(payload)) == payload

    def test_unwritten_reads_zeros(self):
        dev = BlockDevice(scaled_disk(4 * MB), store_data=True)
        assert dev.read(0, 16) == b"\x00" * 16

    def test_overwrite_replaces(self):
        dev = BlockDevice(scaled_disk(4 * MB), store_data=True)
        dev.write(0, 8, b"AAAAAAAA")
        dev.write(4, 8, b"BBBBBBBB")
        assert dev.peek(0, 12) == b"AAAABBBBBBBB"

    def test_partial_overlap_left_and_right(self):
        dev = BlockDevice(scaled_disk(4 * MB), store_data=True)
        dev.write(10, 10, b"X" * 10)
        dev.write(5, 10, b"Y" * 10)   # covers [5, 15)
        dev.write(18, 4, b"Z" * 4)    # covers [18, 22)
        assert dev.peek(5, 17) == b"Y" * 10 + b"X" * 3 + b"ZZZZ"

    def test_write_inside_existing_segment(self):
        dev = BlockDevice(scaled_disk(4 * MB), store_data=True)
        dev.write(0, 16, b"A" * 16)
        dev.write(4, 4, b"BBBB")
        assert dev.peek(0, 16) == b"AAAA" + b"BBBB" + b"A" * 8

    def test_multi_extent_write_and_read(self):
        dev = BlockDevice(scaled_disk(4 * MB), store_data=True)
        extents = [Extent(0, 4), Extent(100, 4)]
        dev.write_extents(extents, b"ABCDEFGH")
        assert dev.read_extents(extents) == b"ABCDEFGH"
        assert dev.peek(100, 4) == b"EFGH"

    def test_data_length_mismatch_rejected(self):
        dev = BlockDevice(scaled_disk(4 * MB), store_data=True)
        with pytest.raises(ConfigError):
            dev.write_extents([Extent(0, 8)], b"short")

    def test_peek_poke_do_not_charge_time(self):
        dev = BlockDevice(scaled_disk(4 * MB), store_data=True)
        dev.poke(0, b"hello")
        assert dev.peek(0, 5) == b"hello"
        assert dev.stats.busy_time_s == 0.0

    def test_peek_requires_content_mode(self, dev):
        with pytest.raises(ConfigError):
            dev.peek(0, 4)


class TestWindows:
    def test_window_captures_subset(self, dev):
        dev.read(0, 1 * MB)
        win = dev.stats.start_window("phase")
        dev.read(2 * MB, 1 * MB)
        dev.stats.end_window(win)
        dev.read(4 * MB, 1 * MB)
        assert win.read_bytes == 1 * MB
        assert dev.stats.read_bytes == 3 * MB

    def test_nested_windows(self, dev):
        outer = dev.stats.start_window("outer")
        dev.write(0, 1 * MB)
        inner = dev.stats.start_window("inner")
        dev.write(1 * MB, 1 * MB)
        dev.stats.end_window(inner)
        dev.write(2 * MB, 1 * MB)
        dev.stats.end_window(outer)
        assert inner.write_bytes == 1 * MB
        assert outer.write_bytes == 3 * MB

    def test_cpu_time_lands_in_windows(self, dev):
        win = dev.stats.start_window("w")
        dev.stats.record_cpu(0.25)
        dev.stats.end_window(win)
        assert win.cpu_time_s == 0.25
        assert win.total_time_s == pytest.approx(0.25)

    def test_throughput_computation(self, dev):
        win = dev.stats.start_window("w")
        dev.read(0, 10 * MB)
        dev.stats.end_window(win)
        assert win.read_throughput() == pytest.approx(
            win.read_bytes / win.read_time_s
        )
        assert win.throughput() > 0
