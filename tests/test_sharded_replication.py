"""Replicated placement, degraded reads, and charged background
rebuild on the ShardedStore composite — including the rebuild
kill-point matrix (crash anywhere inside rebuild(), re-run it, full
redundancy restored with no copy lost or double-counted) and the
experiment-level loss/rebuild wiring."""

import pytest

from crashsim import CrashClock

from dataclasses import replace

from repro.backends import StoreSpec
from repro.backends.lfs_backend import LfsBackend
from repro.backends.sharded import ShardedStore
from repro.core.experiment import ExperimentConfig, run_experiment
from repro.core.workload import ConstantSize
from repro.disk.faults import DeviceFaults, FaultProfile, FaultyBlockDevice
from repro.disk.geometry import scaled_disk
from repro.errors import ConfigError, CrashPoint, ShardUnavailableError
from repro.units import KB, MB


def content_for(key: str, size: int = 32 * KB) -> bytes:
    seed = key.encode()
    return (seed * (size // len(seed) + 1))[:size]


def make_replicated(n=4, replicas=2, *, store_data=True, overlap=False,
                    per_shard=32 * MB, clock=None, torn=False,
                    shard_faults=None, faults=None, rebuild_rate=1.0):
    """A ShardedStore of LfsBackends on faulty devices.

    ``shard_faults`` maps shard index -> DeviceFaults for that shard's
    device; ``clock`` (shared CrashClock) and ``torn`` arm the crash
    matrix; ``faults`` is the composite-level FaultProfile.
    """
    shards = []
    for i in range(n):
        device = FaultyBlockDevice(
            scaled_disk(per_shard), store_data=store_data,
            clock=clock, torn=torn,
            faults=(shard_faults or {}).get(i))
        shards.append(LfsBackend(device, segment_size=2 * MB))
    return ShardedStore(shards, placement="hash", overlap=overlap,
                        replicas=replicas, faults=faults,
                        rebuild_rate=rebuild_rate)


def load(store, count=12, size=32 * KB):
    keys = [f"obj-{i}" for i in range(count)]
    for key in keys:
        store.put(key, data=content_for(key, size))
    return keys


class TestPlacement:
    def test_replicas_land_on_distinct_shards(self):
        store = make_replicated(4, replicas=3)
        keys = load(store)
        for key in keys:
            holders = store.holders_of(key)
            assert len(holders) == 3
            assert len(set(holders)) == 3
            assert holders[0] == store.shard_for(key)

    def test_replica_set_is_ring_deterministic(self):
        a, b = make_replicated(4, replicas=2), make_replicated(4, replicas=2)
        for key in load(a):
            b.put(key, data=content_for(key))
            assert a.holders_of(key) == b.holders_of(key)
            primary = a.shard_for(key)
            assert a.holders_of(key)[1] == (primary + 1) % 4

    def test_single_replica_keeps_flat_maps(self):
        store = make_replicated(3, replicas=1)
        for key in load(store):
            assert store.holders_of(key) == (store.shard_for(key),)

    def test_put_fans_out_in_one_dispatch_round(self):
        store = make_replicated(4, replicas=2, overlap=True)
        store.put("obj", data=content_for("obj"))
        assert store.scheduler.rounds == 1
        # Two lanes wrote concurrently: wall < summed device time.
        devices = store.devices()
        assert store.scheduler.wall_time_s < sum(d.clock_s for d in devices)

    def test_replicas_need_enough_shards(self):
        with pytest.raises(ConfigError):
            make_replicated(2, replicas=3)

    def test_logical_object_count_and_physical_bytes(self):
        store = make_replicated(4, replicas=2)
        keys = load(store, count=10)
        stats = store.store_stats()
        assert stats.objects == 10  # logical, not 20 physical copies
        assert stats.live_bytes == 2 * sum(
            store.meta(k).size for k in keys)


class TestDegradedReads:
    def test_loss_leaves_every_object_readable_byte_identical(self):
        healthy = make_replicated(4, replicas=2)
        faulty = make_replicated(4, replicas=2)
        keys = load(healthy), load(faulty)
        assert keys[0] == keys[1]
        faulty.fail_shard(1)
        for key in keys[0]:
            assert faulty.get(key) == healthy.get(key) == content_for(key)
        assert faulty.degraded_reads > 0
        assert faulty.failovers > 0
        assert healthy.degraded_reads == healthy.failovers == 0

    def test_read_many_matches_per_key_gets(self):
        store = make_replicated(4, replicas=2)
        keys = load(store)
        store.fail_shard(2)
        swept = store.read_many(keys)
        assert swept == [content_for(k) for k in keys]
        assert store.degraded_reads > 0

    def test_read_many_none_still_means_contentless(self):
        store = make_replicated(4, replicas=2, store_data=False)
        keys = [f"obj-{i}" for i in range(8)]
        for key in keys:
            store.put(key, size=32 * KB)
        store.fail_shard(0)
        # Degraded but successful reads of size-only objects: None
        # means "no stored content", never "read failed".
        assert store.read_many(keys) == [None] * len(keys)

    def test_no_surviving_replica_raises(self):
        store = make_replicated(3, replicas=1)
        keys = load(store)
        victim = keys[0]
        store.fail_shard(store.shard_for(victim))
        with pytest.raises(ShardUnavailableError):
            store.get(victim)
        with pytest.raises(ShardUnavailableError):
            store.meta(victim)
        with pytest.raises(ShardUnavailableError):
            store.read_many([victim])

    def test_exists_and_keys_survive_degradation(self):
        store = make_replicated(4, replicas=2)
        keys = load(store)
        store.fail_shard(3)
        assert store.keys() == keys
        assert all(store.exists(k) for k in keys)


class TestTransientRetry:
    def test_retries_then_fails_over_to_replica(self):
        # Shard 0's device fails every read; replicas rescue the key.
        store = make_replicated(
            4, replicas=2,
            shard_faults={0: DeviceFaults(transient_rate=1.0,
                                          transient_ops="read")})
        key = next(k for k in load(store) if store.shard_for(k) == 0)
        assert store.get(key) == content_for(key)
        assert store.retries == ShardedStore.MAX_READ_RETRIES
        assert store.failovers == 1
        assert store.degraded_reads == 1

    def test_backoff_is_charged_as_modelled_time(self):
        store = make_replicated(
            4, replicas=2,
            shard_faults={0: DeviceFaults(transient_rate=1.0,
                                          transient_ops="read")})
        key = next(k for k in load(store) if store.shard_for(k) == 0)
        before = sum(d.stats.cpu_time_s for d in store.devices())
        store.get(key)
        spent = sum(d.stats.cpu_time_s for d in store.devices()) - before
        expected = sum(
            min(ShardedStore.BACKOFF_CAP_S,
                ShardedStore.BACKOFF_BASE_S * (2 ** i))
            for i in range(ShardedStore.MAX_READ_RETRIES))
        # The inner backend books a little lookup CPU of its own; the
        # backoff must account for (at least) the exponential schedule.
        assert spent >= expected
        assert spent == pytest.approx(expected, abs=3e-3)

    def test_unreplicated_key_exhausts_and_raises(self):
        store = make_replicated(
            3, replicas=1,
            shard_faults={i: DeviceFaults(transient_rate=1.0,
                                          transient_ops="read")
                          for i in range(3)})
        keys = load(store)
        with pytest.raises(ShardUnavailableError):
            store.get(keys[0])

    def test_writes_are_not_retried(self):
        from repro.errors import TransientIoError
        store = make_replicated(
            4, replicas=2,
            shard_faults={i: DeviceFaults(transient_rate=1.0,
                                          transient_ops="write")
                          for i in range(4)})
        with pytest.raises(TransientIoError):
            store.put("obj", data=content_for("obj"))


class TestDegradedWrites:
    def test_overwrite_skips_dead_holder(self):
        store = make_replicated(4, replicas=2)
        keys = load(store)
        store.fail_shard(1)
        key = next(k for k in keys if 1 in store.holders_of(k))
        store.overwrite(key, data=content_for(key + "-v2"))
        assert store.get(key) == content_for(key + "-v2")
        assert key in store.under_replicated()

    def test_overwrite_with_no_live_holder_raises(self):
        store = make_replicated(3, replicas=1)
        keys = load(store)
        victim = keys[0]
        store.fail_shard(store.shard_for(victim))
        with pytest.raises(ShardUnavailableError):
            store.overwrite(victim, size=16 * KB)

    def test_delete_under_degradation_drops_the_key(self):
        store = make_replicated(4, replicas=2)
        keys = load(store)
        store.fail_shard(0)
        for key in keys:
            store.delete(key)
        assert store.keys() == []

    def test_new_puts_avoid_dead_shards(self):
        store = make_replicated(4, replicas=2)
        store.fail_shard(2)
        keys = load(store)
        for key in keys:
            assert 2 not in store.holders_of(key)
            assert len(set(store.holders_of(key))) == 2


class TestRebuild:
    def test_restores_full_redundancy(self):
        store = make_replicated(4, replicas=2)
        keys = load(store)
        store.fail_shard(1)
        hurt = store.under_replicated()
        assert hurt  # shard 1 held copies
        report = store.rebuild()
        assert report.rebuilt_objects == len(hurt)
        assert report.unreachable == 0
        assert store.under_replicated() == []
        for key in keys:
            holders = store.holders_of(key)
            assert 1 not in holders
            assert len(set(holders)) == 2
            assert store.get(key) == content_for(key)

    def test_second_pass_is_a_no_op(self):
        store = make_replicated(4, replicas=2)
        load(store)
        store.fail_shard(1)
        store.rebuild()
        again = store.rebuild()
        assert again.rebuilt_objects == 0
        assert again.rebuilt_bytes == 0

    def test_throttle_charges_stall_time(self):
        store = make_replicated(4, replicas=2)
        load(store)
        store.fail_shard(1)
        report = store.rebuild(rate=0.25)
        # Duty cycle: 25% copying means 3s of stall per busy second.
        assert report.stall_s == pytest.approx(3 * report.copy_device_s)
        full = make_replicated(4, replicas=2)
        load(full)
        full.fail_shard(1)
        assert full.rebuild(rate=1.0).stall_s == 0.0

    def test_max_objects_slices_the_pass(self):
        store = make_replicated(4, replicas=2)
        load(store, count=16)
        store.fail_shard(1)
        hurt = len(store.under_replicated())
        assert hurt > 2
        report = store.rebuild(max_objects=2)
        assert report.rebuilt_objects == 2
        assert report.under_replicated_after == hurt - 2
        while store.under_replicated():
            store.rebuild(max_objects=2)
        assert store.rebuild().rebuilt_objects == 0

    def test_counters_accumulate_into_store_stats(self):
        store = make_replicated(4, replicas=2)
        load(store)
        store.fail_shard(1)
        report = store.rebuild()
        stats = store.store_stats()
        assert stats.rebuilt_objects == report.rebuilt_objects
        assert stats.rebuilt_bytes == report.rebuilt_bytes

    def test_unreachable_objects_are_reported(self):
        store = make_replicated(3, replicas=1)
        keys = load(store)
        dead = store.shard_for(keys[0])
        store.fail_shard(dead)
        gone = sum(1 for k in keys if store.shard_for(k) == dead)
        assert store.rebuild().unreachable == gone

    def test_rebalance_refuses_degraded_store(self):
        store = make_replicated(4, replicas=2)
        load(store)
        store.fail_shard(1)
        with pytest.raises(ConfigError):
            store.rebalance()
        store.rebuild()
        # A lost shard stays lost: the migration planner has no healthy
        # target set to level over, so the guard is permanent.
        with pytest.raises(ConfigError):
            store.rebalance()


class TestRebuildKillMatrix:
    """Crash at every write event inside rebuild(); re-running rebuild
    must restore full redundancy without losing or double-counting a
    replica."""

    KEYS = 8

    def build(self, clock):
        return make_replicated(4, replicas=2, clock=clock, torn=True,
                               per_shard=16 * MB)

    def setup_phase(self, store):
        load(store, count=self.KEYS, size=16 * KB)
        store.fail_shard(1)

    def check_redundant(self, store):
        for i in range(self.KEYS):
            key = f"obj-{i}"
            holders = store.holders_of(key)
            assert len(set(holders)) == len(holders) == 2
            assert 1 not in holders
            # No orphan copies on healthy shards beyond the holder set.
            for s, shard in enumerate(store.shards):
                if s != 1:
                    assert shard.exists(key) == (s in holders)
            assert store.get(key) == content_for(key, 16 * KB)

    def test_every_kill_point_inside_rebuild_recovers(self):
        baseline_clock = CrashClock(None)
        baseline = self.build(baseline_clock)
        self.setup_phase(baseline)
        first = baseline_clock.events  # rebuild's first write event
        baseline.rebuild()
        total = baseline_clock.events
        assert total > first, "rebuild produced no write events"
        crashed = 0
        for k in range(first, total):
            clock = CrashClock(k)
            store = self.build(clock)
            self.setup_phase(store)
            try:
                store.rebuild()
            except CrashPoint:
                crashed += 1
            # Recovery: the crash clock has fired; one more pass must
            # finish the job idempotently.
            store.rebuild()
            assert store.under_replicated() == []
            self.check_redundant(store)
        assert crashed > 0


class TestExperimentIntegration:
    def config(self, tmp_path=None, **kw):
        spec = StoreSpec.parse(
            "lfs", default_backend="lfs", volume_bytes=64 * MB,
            write_request=64 * KB)
        spec = replace(spec, shards=4, replicas=2,
                       faults="loss:shard=1:at_age=2")
        return ExperimentConfig(
            store=spec,
            sizes=ConstantSize(64 * KB),
            occupancy=0.4,
            ages=(0.0, 2.0, 4.0, 6.0),
            reads_per_sample=8,
            seed=7,
            rebuild_ages=(4.0,),
            **kw,
        )

    def test_loss_rebuild_run_records_counters(self):
        result = run_experiment(self.config())
        by_age = {s.age: s for s in result.samples}
        # The loss fires *after* the age-2 sample.
        assert by_age[2.0].dead_shards == 0
        # Age 4 samples the degraded store; rebuild runs after it.
        assert by_age[4.0].dead_shards == 1
        assert by_age[4.0].failovers > 0
        assert by_age[4.0].rebuilt_objects == 0
        # Age 6 sees the rebuilt store.
        assert by_age[6.0].rebuilt_objects > 0
        assert by_age[6.0].dead_shards == 1

    def test_rebuild_ages_must_be_sampled_ages(self):
        with pytest.raises(ConfigError):
            replace(self.config(), rebuild_ages=(3.0,))

    def test_checkpoint_resume_through_degraded_state(self, tmp_path):
        ckdir = tmp_path / "ck"
        full = run_experiment(self.config(), checkpoint_dir=ckdir)
        # Resume from the final checkpoint: nothing left to do, and the
        # pickled store must round-trip its fault state.
        resumed = run_experiment(self.config(), checkpoint_dir=ckdir,
                                 resume=True)
        assert [s.age for s in resumed.samples] == \
            [s.age for s in full.samples]
        assert resumed.samples[-1].dead_shards == \
            full.samples[-1].dead_shards == 1
        assert resumed.samples[-1].rebuilt_objects == \
            full.samples[-1].rebuilt_objects
