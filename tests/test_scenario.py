"""Scenario engine: spec grammar, per-tenant accounting, reconciliation.

Three layers, mirroring the module split:

* :class:`~repro.scenario.spec.ScenarioSpec` grammar — presets parse,
  canonical text round-trips exactly, unknown presets/keys and
  out-of-range values are rejected with :class:`ConfigError`.
* The engine itself — bulk load partitions keys across tenants, TTL
  churn expires objects without collapsing populations, and the
  non-event latency path's per-tenant histograms sum-reconcile with
  the global interval histogram.
* Experiment integration — a scenario run over a ``queue=event`` store
  surfaces per-tenant sojourn summaries on every aged sample, and the
  tenant counts sum to the sample's global count (the reconciliation
  invariant), on the non-event path too.
"""

import json

import pytest

from repro.backends.registry import build_store
from repro.backends.spec import StoreSpec
from repro.core.experiment import ExperimentConfig, run_experiment
from repro.core.workload import ConstantSize, WorkloadSpec
from repro.errors import ConfigError
from repro.scenario.engine import (
    ScenarioState,
    scenario_bulk_load,
    scenario_step,
    scenario_to_age,
)
from repro.scenario.spec import (
    SCENARIO_PRESETS,
    ScenarioSpec,
    TenantProfile,
    scenario_names,
)
from repro.units import KB, MB


# ----------------------------------------------------------------------
# Spec grammar
# ----------------------------------------------------------------------
class TestSpecGrammar:
    def test_registry_and_names_agree(self):
        assert scenario_names() == tuple(sorted(SCENARIO_PRESETS))
        assert set(scenario_names()) == {
            "cdn_churn", "log_ingest", "photo_sharing", "video_dvr",
        }

    @pytest.mark.parametrize("name", sorted(SCENARIO_PRESETS))
    def test_bare_preset_parses_and_round_trips(self, name):
        spec = ScenarioSpec.parse(name)
        assert spec.name == name
        assert spec.params == ()
        assert spec.text() == name
        assert ScenarioSpec.parse(spec.text()) == spec
        assert len(spec.tenants) == SCENARIO_PRESETS[name].tenants

    @pytest.mark.parametrize("text", [
        "cdn_churn:tenants=8,skew=1.1,seed=7",
        "photo_sharing:tenants=2",
        "log_ingest:ttl=400,amplitude=0.8,period=300",
        "video_dvr:tenants=2,seed=3",
        "  cdn_churn : tenants = 4 , seed = 1 ",
    ])
    def test_round_trip_identity(self, text):
        spec = ScenarioSpec.parse(text)
        assert ScenarioSpec.parse(spec.text()) == spec

    def test_canonical_text_sorts_params(self):
        spec = ScenarioSpec.parse("cdn_churn:tenants=8,skew=1.1,seed=7")
        assert spec.text() == "cdn_churn:seed=7,skew=1.1,tenants=8"
        assert len(spec.tenants) == 8
        assert spec.seed == 7
        assert all(t.zipf == 1.1 for t in spec.tenants)

    def test_defaults_come_from_the_preset(self):
        spec = ScenarioSpec.parse("log_ingest")
        preset = SCENARIO_PRESETS["log_ingest"]
        assert spec.wave_amplitude == preset.amplitude
        assert spec.wave_period_ops == preset.period
        assert all(t.ttl_ops == preset.ttl for t in spec.tenants)

    @pytest.mark.parametrize("bad", [
        "warehouse",                      # unknown preset
        "cdn_churn:shards=4",             # unknown key
        "cdn_churn:tenants",              # missing =value
        "cdn_churn:tenants=",             # empty value
        "cdn_churn:tenants=4,tenants=5",  # duplicate key
        "cdn_churn:tenants=zero",         # bad int
        "cdn_churn:skew=hot",             # bad float
        "cdn_churn:tenants=0",            # below range
        "cdn_churn:tenants=65",           # above range
        "cdn_churn:skew=-1",              # negative skew
        "cdn_churn:ttl=-5",               # negative ttl
        "cdn_churn:amplitude=1.0",        # wave must stay < 1
    ])
    def test_rejected_specs(self, bad):
        with pytest.raises(ConfigError):
            ScenarioSpec.parse(bad)

    def test_tenant_profile_validation(self):
        ok = dict(name="t", sizes=ConstantSize(64 * KB))
        with pytest.raises(ConfigError):
            TenantProfile(read_fraction=0.5, overwrite_fraction=0.1,
                          create_fraction=0.1, **ok)  # sums to 0.7
        with pytest.raises(ConfigError):
            TenantProfile(read_fraction=0.5, overwrite_fraction=0.0,
                          create_fraction=0.5, ttl_ops=0, **ok)
        with pytest.raises(ConfigError):
            TenantProfile(weight=0.0, **ok)

    def test_spec_validation(self):
        tenant = TenantProfile(name="t", sizes=ConstantSize(64 * KB))
        with pytest.raises(ConfigError):  # duplicate tenant names
            ScenarioSpec(name="x", tenants=(tenant, tenant))
        sleepy = TenantProfile(name="z", sizes=ConstantSize(64 * KB),
                               read_fraction=1.0, overwrite_fraction=0.0,
                               create_fraction=0.0)
        with pytest.raises(ConfigError):  # nothing ever writes
            ScenarioSpec(name="x", tenants=(sleepy,))

    def test_mean_object_size_is_share_weighted(self):
        spec = ScenarioSpec.parse("video_dvr:tenants=3")
        # Three ConstantSize tenants (1/2/4 MB) with equal shares.
        assert spec.mean_object_size == pytest.approx(7 * MB / 3)

    def test_to_dict_is_json_friendly(self):
        spec = ScenarioSpec.parse("photo_sharing:tenants=2,seed=9")
        blob = json.dumps(spec.to_dict())
        assert json.loads(blob)["text"] == "photo_sharing:seed=9,tenants=2"


# ----------------------------------------------------------------------
# Engine (direct, non-event store)
# ----------------------------------------------------------------------
def _fresh_state(scenario_text: str, *, occupancy: float = 0.4,
                 volume: int = 48 * MB, seed: int = 11):
    store = build_store(StoreSpec("filesystem", volume_bytes=volume))
    scn = ScenarioSpec.parse(scenario_text)
    wspec = WorkloadSpec(
        sizes=ConstantSize(max(1, round(scn.mean_object_size))),
        target_occupancy=occupancy,
    )
    return store, scenario_bulk_load(store, wspec, scn, seed)


class TestEngine:
    def test_bulk_load_partitions_keys_across_tenants(self):
        store, state = _fresh_state("cdn_churn:tenants=3,seed=5")
        assert all(t.keys for t in state.tenants)
        assert sum(len(t.keys) for t in state.tenants) \
            == len(state.workload.keys)
        assert len(set(state.workload.keys)) == len(state.workload.keys)
        for tenant in state.tenants:
            prefix = f"{tenant.profile.name}-object-"
            assert all(k.startswith(prefix) for k in tenant.keys)
        assert state.workload.tracker.live_bytes > 0
        assert state.live_cap > state.workload.tracker.live_bytes

    def test_nonevent_interval_histograms_sum_reconcile(self):
        store, state = _fresh_state("cdn_churn:tenants=3,seed=5")
        for _ in range(300):
            scenario_step(store, state)
        glob, per_tenant = state.take_interval_summaries()
        assert sum(t.ops for t in state.tenants) == 300
        # Expiry deletes are timed too, so the histogram can hold more
        # than 300 records — but tenant splits always sum to the global.
        assert glob["count"] >= 300
        assert sum(s["count"] for s in per_tenant.values()) \
            == glob["count"]
        assert glob["p99_s"] >= glob["p50_s"] >= 0.0
        # Draining resets: a second take reports an empty interval.
        assert state.take_interval_summaries() == ({}, {})

    def test_ttl_churn_expires_without_collapsing(self):
        store, state = _fresh_state("log_ingest:tenants=2,ttl=60,seed=5")
        for _ in range(600):
            scenario_step(store, state)
        assert sum(t.expired for t in state.tenants) > 0
        assert sum(t.creates for t in state.tenants) > 0
        for tenant in state.tenants:
            assert len(tenant.keys) >= tenant.ttl_floor
        # Key books stay consistent: tenant keys partition the workload
        # keys, and every live key still resolves in the store.
        all_keys = [k for t in state.tenants for k in t.keys]
        assert sorted(all_keys) == sorted(state.workload.keys)
        assert all(store.exists(k) for k in state.workload.keys)

    def test_scenario_to_age_reaches_target(self):
        store, state = _fresh_state("cdn_churn:tenants=2,seed=5")
        seen = []
        steps = scenario_to_age(store, state, 0.5,
                                on_step=lambda i: seen.append(i))
        assert state.workload.tracker.storage_age >= 0.5
        assert steps == len(seen) == seen[-1]

    def test_zipf_skews_toward_hot_ranks(self):
        store, state = _fresh_state("cdn_churn:tenants=1,skew=1.2,seed=5")
        tenant = state.tenants[0]
        hot = tenant.keys[0]
        draws = [tenant.pick_key() for _ in range(2000)]
        hot_share = draws.count(hot) / len(draws)
        assert hot_share > 2.0 / len(tenant.keys)


# ----------------------------------------------------------------------
# Experiment integration: the reconciliation invariant end to end
# ----------------------------------------------------------------------
EVENT_STORE = "lfs:shards=2,overlap=true,queue=event,volume=48M"


def _experiment(store_spec: StoreSpec, scenario_text: str,
                **overrides) -> ExperimentConfig:
    kwargs = dict(
        store=store_spec,
        scenario=ScenarioSpec.parse(scenario_text),
        occupancy=0.4,
        ages=(0.0, 1.0, 2.0),
        reads_per_sample=8,
        seed=11,
    )
    kwargs.update(overrides)
    return ExperimentConfig(**kwargs)


class TestExperimentIntegration:
    @pytest.mark.parametrize("store_text,scenario_text", [
        (EVENT_STORE, "cdn_churn:tenants=3,seed=5"),
        (None, "log_ingest:tenants=2,seed=5"),
    ])
    def test_tenant_counts_sum_to_global(self, store_text, scenario_text):
        spec = (StoreSpec.parse(store_text) if store_text
                else StoreSpec("filesystem", volume_bytes=48 * MB))
        result = run_experiment(_experiment(spec, scenario_text))
        aged = [s for s in result.samples if s.age > 0]
        assert aged, "no aged samples"
        for sample in aged:
            assert sample.scenario_lat, "missing interval summary"
            assert sample.tenant_lat, "missing per-tenant summaries"
            assert sum(t["count"] for t in sample.tenant_lat.values()) \
                == sample.scenario_lat["count"]
        # The age-0 sample precedes any churn: no interval to report.
        assert result.samples[0].scenario_lat == {}

    def test_scenario_runs_are_deterministic(self):
        cfg = _experiment(StoreSpec.parse(EVENT_STORE),
                          "cdn_churn:tenants=3,seed=5", ages=(0.0, 1.0))
        assert run_experiment(cfg).to_dict() \
            == run_experiment(cfg).to_dict()

    def test_config_derives_sizes_and_labels_from_scenario(self):
        cfg = _experiment(StoreSpec.parse(EVENT_STORE),
                          "cdn_churn:tenants=3,seed=5")
        assert cfg.sizes is not None
        assert "cdn_churn:seed=5,tenants=3" in cfg.display_label()
        assert cfg.to_dict()["scenario"]["name"] == "cdn_churn"

    def test_result_serializes_with_tenant_summaries(self, tmp_path):
        cfg = _experiment(StoreSpec.parse(EVENT_STORE),
                          "cdn_churn:tenants=3,seed=5", ages=(0.0, 1.0))
        result = run_experiment(cfg)
        path = tmp_path / "out.json"
        result.save(path)
        blob = json.loads(path.read_text())
        last = blob["samples"][-1]
        assert last["tenant_lat"]
        assert sum(t["count"] for t in last["tenant_lat"].values()) \
            == last["scenario_lat"]["count"]
