"""The linter lints: fixture snippets per rule, suppression hygiene,
and the schema-manifest guard.

Each rule gets a minimal bad example that must fire and an idiomatic
good example that must stay quiet; the manifest tests build a scratch
tree and prove that mutating a pickled field without bumping the guard
fails RPL201 (and that ``manifest --write`` refuses to paper over it).
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

_ROOT = Path(__file__).resolve().parent.parent
if str(_ROOT) not in sys.path:
    sys.path.insert(0, str(_ROOT))

from tools.reprolint import all_rules, lint_source, run_lint  # noqa: E402
from tools.reprolint import config  # noqa: E402
from tools.reprolint.__main__ import main as reprolint_main  # noqa: E402
from tools.reprolint.rules_schema import build_manifest  # noqa: E402


def codes(findings) -> list[str]:
    return [f.code for f in findings]


def fire(source: str, relpath: str, code: str) -> list:
    found = lint_source(source, relpath, scopes=config.RULE_SCOPES,
                        codes=(code,))
    return [f for f in found if f.code == code]


# ----------------------------------------------------------------------
# Determinism rules
# ----------------------------------------------------------------------
class TestDeterminismRules:
    def test_rpl101_fires_on_wall_clock(self):
        bad = "import time\nstamp = time.time()\n"
        assert codes(fire(bad, "src/repro/x.py", "RPL101")) == ["RPL101"]

    def test_rpl101_fires_on_from_import(self):
        bad = "from os import urandom\nnoise = urandom(8)\n"
        assert codes(fire(bad, "benchmarks/b.py", "RPL101")) == ["RPL101"]

    def test_rpl101_quiet_on_unrelated_attr(self):
        good = "class T:\n    def time(self):\n        return 0\n" \
               "t = T().time()\n"
        assert fire(good, "src/repro/x.py", "RPL101") == []

    def test_rpl102_fires_in_src_only(self):
        bad = "import time\nt0 = time.perf_counter()\n"
        assert codes(fire(bad, "src/repro/x.py", "RPL102")) == ["RPL102"]
        assert fire(bad, "benchmarks/bench.py", "RPL102") == []

    def test_rpl103_fires_on_rng_construction(self):
        bad = "import random\nrng = random.Random(7)\n"
        assert codes(fire(bad, "src/repro/x.py", "RPL103")) == ["RPL103"]

    def test_rpl103_exempts_rng_module_and_methods(self):
        bad = "import random\nrng = random.Random(7)\n"
        assert fire(bad, "src/repro/rng.py", "RPL103") == []
        # Method calls on an instance never resolve to the module.
        good = "def draw(rng):\n    return rng.random()\n"
        assert fire(good, "src/repro/x.py", "RPL103") == []

    def test_rpl103_annotation_only_import_is_fine(self):
        good = "from random import Random\n" \
               "def f(rng: Random) -> float:\n    return rng.random()\n"
        assert fire(good, "src/repro/x.py", "RPL103") == []

    def test_rpl104_unseeded_and_global_rng(self):
        assert codes(fire("import random\nr = random.Random()\n",
                          "tests/t.py", "RPL104")) == ["RPL104"]
        assert codes(fire("import random\nx = random.randint(0, 9)\n",
                          "benchmarks/b.py", "RPL104")) == ["RPL104"]
        assert fire("import random\nr = random.Random(42)\n",
                    "tests/t.py", "RPL104") == []

    def test_rpl105_set_iteration(self):
        bad = "for x in {1, 2, 3}:\n    print(x)\n"
        assert codes(fire(bad, "src/repro/x.py", "RPL105")) == ["RPL105"]
        bad2 = "out = [k for k in set(items)]\n"
        assert codes(fire(bad2, "tests/t.py", "RPL105")) == ["RPL105"]
        good = "for x in sorted({1, 2, 3}):\n    print(x)\n"
        assert fire(good, "src/repro/x.py", "RPL105") == []

    def test_rpl106_values_accumulation(self):
        bad = "total = sum(d.values())\n"
        assert codes(fire(bad, "src/repro/alloc/x.py",
                          "RPL106")) == ["RPL106"]
        bad2 = "total = sum(v.size for v in d.values())\n"
        assert codes(fire(bad2, "src/repro/backends/x.py",
                          "RPL106")) == ["RPL106"]
        good = "total = sum(d[k] for k in sorted(d))\n"
        assert fire(good, "src/repro/alloc/x.py", "RPL106") == []
        # Out of the accounting scope: quiet.
        assert fire(bad, "src/repro/core/x.py", "RPL106") == []


# ----------------------------------------------------------------------
# Hygiene rules
# ----------------------------------------------------------------------
class TestHygieneRules:
    def test_rpl401_mutable_default(self):
        bad = "def f(xs=[]):\n    return xs\n"
        assert codes(fire(bad, "src/repro/x.py", "RPL401")) == ["RPL401"]
        good = "def f(xs=None):\n    return xs or []\n"
        assert fire(good, "src/repro/x.py", "RPL401") == []

    def test_rpl402_dataclass_needs_slots(self):
        bad = ("from dataclasses import dataclass\n"
               "@dataclass\nclass Hot:\n    x: int = 0\n")
        assert codes(fire(bad, "src/repro/disk/x.py",
                          "RPL402")) == ["RPL402"]
        good = ("from dataclasses import dataclass\n"
                "@dataclass(slots=True)\nclass Hot:\n    x: int = 0\n")
        assert fire(good, "src/repro/disk/x.py", "RPL402") == []
        # Cold paths are not in scope.
        assert fire(bad, "src/repro/core/x.py", "RPL402") == []

    def test_rpl402_struct_plain_class_needs_dunder_slots(self):
        bad = "class Node:\n    def __init__(self):\n        self.x = 0\n"
        assert codes(fire(bad, "src/repro/struct/x.py",
                          "RPL402")) == ["RPL402"]
        good = ("class Node:\n    __slots__ = ('x',)\n"
                "    def __init__(self):\n        self.x = 0\n")
        assert fire(good, "src/repro/struct/x.py", "RPL402") == []


# ----------------------------------------------------------------------
# Suppression hygiene (the RPL0xx meta rules)
# ----------------------------------------------------------------------
class TestSuppressions:
    def test_reasoned_suppression_silences(self):
        src = "import time\nt = time.time()  " \
              "# reprolint: ok RPL101 (fixture)\n"
        assert fire(src, "src/repro/x.py", "RPL101") == []

    def test_suppression_without_reason_is_an_error(self):
        src = "import time\nt = time.time()  # reprolint: ok RPL101\n"
        found = lint_source(src, "src/repro/x.py",
                            scopes=config.RULE_SCOPES)
        assert "RPL002" in codes(found)
        # And the underlying finding survives.
        assert "RPL101" in codes(found)

    def test_unknown_code_is_an_error(self):
        src = "x = 1  # reprolint: ok RPL999 (no such rule)\n"
        found = lint_source(src, "src/x.py", scopes=config.RULE_SCOPES)
        assert codes(found) == ["RPL003"]

    def test_meta_rules_not_suppressible(self):
        src = "x = 1  # reprolint: ok RPL004 (suppress the checker)\n"
        found = lint_source(src, "src/x.py", scopes=config.RULE_SCOPES)
        assert codes(found) == ["RPL003"]

    def test_unused_suppression_is_an_error(self):
        src = "x = 1  # reprolint: ok RPL101 (nothing here)\n"
        found = lint_source(src, "src/x.py", scopes=config.RULE_SCOPES)
        assert codes(found) == ["RPL004"]

    def test_malformed_pragma_is_an_error(self):
        src = "x = 1  # reprolint: sure whatever\n"
        found = lint_source(src, "src/x.py", scopes=config.RULE_SCOPES)
        assert codes(found) == ["RPL001"]

    def test_file_wide_suppression(self):
        src = ("# reprolint: file ok RPL105 (fixture file)\n"
               "for x in {1, 2}:\n    print(x)\n"
               "for y in {3, 4}:\n    print(y)\n")
        assert fire(src, "src/repro/x.py", "RPL105") == []


# ----------------------------------------------------------------------
# Schema manifest (RPL2xx) on a scratch tree
# ----------------------------------------------------------------------
MODULE = """\
from dataclasses import dataclass

@dataclass
class Frame:
    offset: int = 0
    length: int = 0
"""


@pytest.fixture
def scratch(tmp_path, monkeypatch):
    """A mini repo: one guarded module + its freshly written manifest."""
    (tmp_path / "src/mini").mkdir(parents=True)
    (tmp_path / "src/mini/state.py").write_text(MODULE)
    (tmp_path / "src/mini/version.py").write_text(
        'CHECKPOINT_SCHEMA = "run-checkpoint/1"\n')
    (tmp_path / "tools/reprolint").mkdir(parents=True)
    monkeypatch.setattr(config, "VERSION_TOKENS",
                        {"CHECKPOINT_SCHEMA": "src/mini/version.py"})
    monkeypatch.setattr(config, "MANIFEST_COVERAGE", {
        "src/mini/state.py": {"guard": "CHECKPOINT_SCHEMA",
                              "track": ["Frame"]},
    })
    manifest = build_manifest(tmp_path)
    (tmp_path / config.MANIFEST_PATH).write_text(
        json.dumps(manifest, indent=2, sort_keys=True))
    return tmp_path


def rpl2(root) -> list:
    found = run_lint(["src"], root=root, scopes=config.RULE_SCOPES)
    return [f for f in found if f.code.startswith("RPL2")]


class TestSchemaManifest:
    def test_clean_tree_passes(self, scratch):
        assert rpl2(scratch) == []

    def test_field_added_without_bump_fails(self, scratch):
        (scratch / "src/mini/state.py").write_text(
            MODULE.replace("length: int = 0",
                           "length: int = 0\n    dirty: bool = False"))
        findings = rpl2(scratch)
        assert codes(findings) == ["RPL201"]
        assert "without bumping CHECKPOINT_SCHEMA" in findings[0].message
        assert "dirty" in findings[0].message

    def test_default_changed_without_bump_fails(self, scratch):
        (scratch / "src/mini/state.py").write_text(
            MODULE.replace("offset: int = 0", "offset: int = 1"))
        findings = rpl2(scratch)
        assert codes(findings) == ["RPL201"]
        assert "without bumping" in findings[0].message

    def test_slots_added_without_bump_fails(self, scratch):
        """slots=True rewires the pickle layout with no field change."""
        (scratch / "src/mini/state.py").write_text(
            MODULE.replace("@dataclass", "@dataclass(slots=True)"))
        findings = rpl2(scratch)
        assert codes(findings) == ["RPL201"]
        assert "without bumping CHECKPOINT_SCHEMA" in findings[0].message
        assert "slots" in findings[0].message

    def test_setstate_added_without_bump_fails(self, scratch):
        (scratch / "src/mini/state.py").write_text(
            MODULE + "\n    def __setstate__(self, state):\n"
                     "        pass\n")
        findings = rpl2(scratch)
        assert codes(findings) == ["RPL201"]
        assert "hooks" in findings[0].message

    def test_bumped_guard_reports_stale_manifest(self, scratch):
        (scratch / "src/mini/state.py").write_text(
            MODULE.replace("length: int = 0",
                           "length: int = 0\n    dirty: bool = False"))
        (scratch / "src/mini/version.py").write_text(
            'CHECKPOINT_SCHEMA = "run-checkpoint/2"\n')
        findings = rpl2(scratch)
        assert all(f.code == "RPL201" for f in findings)
        assert any("stale" in f.message for f in findings)
        assert not any("without bumping" in f.message for f in findings)

    def test_regenerating_after_bump_passes(self, scratch):
        (scratch / "src/mini/state.py").write_text(
            MODULE.replace("length: int = 0",
                           "length: int = 0\n    dirty: bool = False"))
        (scratch / "src/mini/version.py").write_text(
            'CHECKPOINT_SCHEMA = "run-checkpoint/2"\n')
        assert reprolint_main(["manifest", "--write",
                               "--root", str(scratch)]) == 0
        assert rpl2(scratch) == []

    def test_manifest_write_refuses_unbumped_change(self, scratch,
                                                    capsys):
        (scratch / "src/mini/state.py").write_text(
            MODULE.replace("length: int = 0",
                           "length: int = 0\n    dirty: bool = False"))
        assert reprolint_main(["manifest", "--write",
                               "--root", str(scratch)]) == 2
        err = capsys.readouterr().err
        assert "without a guard version bump" in err
        assert reprolint_main(["manifest", "--write", "--allow-unbumped",
                               "--root", str(scratch)]) == 0

    def test_rpl202_flags_unlisted_dataclass(self, scratch):
        (scratch / "src/mini/state.py").write_text(
            MODULE + "\n@dataclass\nclass Extra:\n    x: int = 0\n")
        findings = rpl2(scratch)
        assert "RPL202" in codes(findings)


# ----------------------------------------------------------------------
# Driver behaviour: suppression routing and path validation
# ----------------------------------------------------------------------
class TestDriver:
    def test_suppression_in_unscanned_file_applies(self, scratch):
        """A project finding anchored outside the scanned paths still
        honours that file's own suppression table."""
        (scratch / "src/other").mkdir()
        (scratch / "src/other/util.py").write_text("x = 1\n")
        (scratch / "src/mini/state.py").write_text(
            MODULE.replace(
                "class Frame:",
                "class Frame:  # reprolint: ok RPL201 (fixture drift)",
            ).replace("length: int = 0",
                      "length: int = 0\n    dirty: bool = False"))
        found = run_lint(["src/other"], root=scratch,
                         scopes=config.RULE_SCOPES)
        assert [f.render() for f in found if f.code == "RPL201"] == []
        # Scanning the file itself routes through the same table.
        found = run_lint(["src"], root=scratch,
                         scopes=config.RULE_SCOPES)
        assert [f.render() for f in found if f.code == "RPL201"] == []

    def test_out_of_root_path_is_a_usage_error(self, tmp_path, capsys):
        root = tmp_path / "repo"
        (root / "src").mkdir(parents=True)
        (root / "src/ok.py").write_text("x = 1\n")
        outside = tmp_path / "elsewhere.py"
        outside.write_text("x = 1\n")
        code = reprolint_main([str(outside), "--root", str(root),
                               "--no-project-rules"])
        assert code == 2
        assert "outside the lint root" in capsys.readouterr().err


# ----------------------------------------------------------------------
# The repo itself
# ----------------------------------------------------------------------
class TestRepoIsClean:
    def test_catalogue_documented(self):
        """Every registered code appears in docs/architecture.md."""
        text = (_ROOT / "docs/architecture.md").read_text()
        for code in all_rules():
            assert code in text, f"{code} missing from the catalogue"

    def test_tree_lints_clean(self):
        findings = run_lint(["src", "benchmarks", "tests"], root=_ROOT,
                            scopes=config.RULE_SCOPES)
        assert findings == [], "\n".join(f.render() for f in findings)

    def test_manifest_matches_tree(self):
        stored = json.loads(
            (_ROOT / config.MANIFEST_PATH).read_text())
        assert stored == build_manifest(_ROOT)
