"""Reusable crash-injection harness for recovery testing.

Storage systems are validated by killing them mid-write, thousands of
times; this module is the killing machinery's test-side face.  The
primitives themselves — :class:`~repro.disk.faults.CrashClock` and the
crashing device — were promoted to :mod:`repro.disk.faults` (where the
runtime fault-injection layer shares one implementation and one
torn-write semantics with the recovery matrices); this module re-exports
them under their historical names and keeps the matrix driver:

* :class:`CrashClock` — a shared countdown of *write events* (data
  write submissions, log forces, and host-level commit kill points).
  Sharing one clock across several devices lets a kill point land
  anywhere inside a multi-volume store.
* :class:`FaultyDevice` — alias of
  :class:`~repro.disk.faults.FaultyBlockDevice`: ticks the clock before
  every write-bearing submission and every flush, raising
  :class:`~repro.errors.CrashPoint` *before* the submission takes
  effect — or, in ``torn`` mode, after applying only a prefix of the
  doomed write's content, modelling a half-transferred sector run.
* :func:`kill_point_matrix` — the driver: measure the fault-free
  write-event count of a workload, then replay the workload once per
  kill point ``k`` in ``[0, total)``, yielding each crashed (or
  surviving) system for the caller's recovery checks.

The invariant every consumer asserts (the paper's Section 2 rule): an
extent freed by a delete is never allocatable before the commit that
logged the delete is durable — at any kill point, the journal's
pending frees must be absent from the free index, and recovery must
either discard them (force never happened) or replay them (force
completed).
"""

from __future__ import annotations

from collections.abc import Callable, Iterator

from repro.disk.faults import CrashClock, FaultyBlockDevice
from repro.errors import CrashPoint

__all__ = ["CrashClock", "FaultyDevice", "kill_point_matrix"]

#: Historical name; the implementation now lives in repro.disk.faults.
FaultyDevice = FaultyBlockDevice


def kill_point_matrix(build: Callable[[CrashClock], object],
                      workload: Callable[[object], None],
                      ) -> Iterator[tuple[int, bool, object]]:
    """Replay ``workload`` once per kill point; yield each outcome.

    ``build(clock)`` constructs a fresh system whose faulty devices
    (and, if desired, host-level crash hooks) share ``clock``;
    ``workload(system)`` drives it.  The first, unarmed run measures
    the total write-event count ``T``; the matrix then yields
    ``(k, crashed, system)`` for every ``k`` in ``[0, T)``.  Callers
    run their recovery path on each yielded system and assert the
    deferred-free invariant.
    """
    baseline_clock = CrashClock(None)
    baseline = build(baseline_clock)
    workload(baseline)
    total = baseline_clock.events
    assert total > 0, "workload produced no write events to kill"
    for k in range(total):
        clock = CrashClock(k)
        system = build(clock)
        try:
            workload(system)
            crashed = False
        except CrashPoint:
            crashed = True
        yield k, crashed, system
