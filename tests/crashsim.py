"""Reusable crash-injection harness for recovery testing.

Storage systems are validated by killing them mid-write, thousands of
times; this module is the killing machinery.  Three pieces:

* :class:`CrashClock` — a shared countdown of *write events* (data
  write submissions, log forces, and host-level commit kill points).
  Sharing one clock across several devices lets a kill point land
  anywhere inside a multi-volume store.
* :class:`FaultyDevice` — a :class:`~repro.disk.device.BlockDevice`
  that ticks the clock before every write-bearing submission and every
  flush.  When the clock fires it raises
  :class:`~repro.errors.CrashPoint` *before* the submission takes
  effect — or, in ``torn`` mode, after applying only a prefix of the
  doomed write's content, modelling a half-transferred sector run.
* :func:`kill_point_matrix` — the driver: measure the fault-free
  write-event count of a workload, then replay the workload once per
  kill point ``k`` in ``[0, total)``, yielding each crashed (or
  surviving) system for the caller's recovery checks.

The invariant every consumer asserts (the paper's Section 2 rule): an
extent freed by a delete is never allocatable before the commit that
logged the delete is durable — at any kill point, the journal's
pending frees must be absent from the free index, and recovery must
either discard them (force never happened) or replay them (force
completed).
"""

from __future__ import annotations

from collections.abc import Callable, Iterator

from repro.disk.device import BlockDevice, IoRequest
from repro.disk.geometry import DiskGeometry
from repro.errors import CrashPoint


class CrashClock:
    """Countdown shared by every faulty device of one system.

    ``kill_after=None`` never fires (used for the fault-free baseline
    that measures a workload's write-event count); ``kill_after=k``
    fires on the ``k``-th write event (0-based), once.
    """

    def __init__(self, kill_after: int | None = None) -> None:
        self.kill_after = kill_after
        self.events = 0
        self.fired = False

    def tick(self, label: str = "") -> None:
        """Count one write event; raise :class:`CrashPoint` when armed."""
        if (self.kill_after is not None and not self.fired
                and self.events >= self.kill_after):
            self.fired = True
            raise CrashPoint(
                f"injected crash at write event {self.events}"
                + (f" ({label})" if label else "")
            )
        self.events += 1

    def hook(self, label: str) -> None:
        """Adapter matching the ``crash_hook(label)`` signature."""
        self.tick(label)


class FaultyDevice(BlockDevice):
    """A block device that crashes after N write events.

    Reads never crash (a dying read loses nothing); every write-bearing
    ``submit`` and every ``flush`` ticks the clock first.  With
    ``torn=True`` the doomed write additionally applies the first half
    of its first extent's content (untimed, like a partial transfer
    cut by power loss) before raising — so content-checked recovery
    sees a genuinely torn state, not just a missing one.
    """

    def __init__(self, geometry: DiskGeometry, *,
                 clock: CrashClock | None = None,
                 torn: bool = False, **kwargs) -> None:
        super().__init__(geometry, **kwargs)
        self.clock = clock if clock is not None else CrashClock()
        self.torn = torn

    @property
    def write_events(self) -> int:
        return self.clock.events

    def _tick(self, label: str, batch: list[IoRequest]) -> None:
        try:
            self.clock.tick(label)
        except CrashPoint:
            if self.torn and self.stores_data:
                self._tear(batch)
            raise

    def _tear(self, batch: list[IoRequest]) -> None:
        for req in batch:
            if req.is_write and req.data is not None and req.extents:
                ext = req.extents[0]
                half = ext.length // 2
                if half:
                    self.poke(ext.start, req.data[:half])
                return

    def submit(self, batch: list[IoRequest], *,
               reorder: bool | None = None) -> list[bytes | None]:
        if any(req.is_write for req in batch):
            self._tick("write", batch)
        return super().submit(batch, reorder=reorder)

    def flush(self) -> None:
        self._tick("flush", [])
        super().flush()


def kill_point_matrix(build: Callable[[CrashClock], object],
                      workload: Callable[[object], None],
                      ) -> Iterator[tuple[int, bool, object]]:
    """Replay ``workload`` once per kill point; yield each outcome.

    ``build(clock)`` constructs a fresh system whose faulty devices
    (and, if desired, host-level crash hooks) share ``clock``;
    ``workload(system)`` drives it.  The first, unarmed run measures
    the total write-event count ``T``; the matrix then yields
    ``(k, crashed, system)`` for every ``k`` in ``[0, T)``.  Callers
    run their recovery path on each yielded system and assert the
    deferred-free invariant.
    """
    baseline_clock = CrashClock(None)
    baseline = build(baseline_clock)
    workload(baseline)
    total = baseline_clock.events
    assert total > 0, "workload produced no write events to kill"
    for k in range(total):
        clock = CrashClock(k)
        system = build(clock)
        try:
            workload(system)
            crashed = False
        except CrashPoint:
            crashed = True
        yield k, crashed, system
