"""Tests for the NTFS-style run cache allocator."""

import pytest

from repro.alloc.extent import Extent
from repro.alloc.freelist import FreeExtentIndex
from repro.alloc.runcache import NtfsRunCache
from repro.errors import AllocationError, ConfigError
from repro.units import KB, MB


def make_cache(capacity=100 * MB, band=0.125, cache_size=64):
    index = FreeExtentIndex(capacity)
    return NtfsRunCache(index, outer_band_fraction=band,
                        cache_size=cache_size), index


class TestChoose:
    def test_outer_band_preferred(self):
        cache, index = make_cache()
        # Carve the volume so a band hole and a bigger non-band run exist.
        index.remove(Extent(0, 100 * MB))
        index.add(Extent(1 * MB, 2 * MB))       # in band (limit 12.5 MB)
        index.add(Extent(50 * MB, 40 * MB))     # larger, out of band
        assert cache.choose(1 * MB) == Extent(1 * MB, 2 * MB)

    def test_band_rule_picks_lowest_offset(self):
        cache, index = make_cache()
        index.remove(Extent(0, 100 * MB))
        index.add(Extent(4 * MB, 2 * MB))
        index.add(Extent(1 * MB, 2 * MB))
        assert cache.choose(1 * MB).start == 1 * MB

    def test_band_hole_too_small_falls_to_largest(self):
        cache, index = make_cache()
        index.remove(Extent(0, 100 * MB))
        index.add(Extent(1 * MB, 1 * MB))       # band, too small
        index.add(Extent(40 * MB, 20 * MB))
        index.add(Extent(70 * MB, 10 * MB))
        assert cache.choose(5 * MB) == Extent(40 * MB, 20 * MB)

    def test_largest_rule_breaks_ties_to_lower_offset(self):
        cache, index = make_cache()
        index.remove(Extent(0, 100 * MB))
        index.add(Extent(60 * MB, 10 * MB))
        index.add(Extent(30 * MB, 10 * MB))
        assert cache.choose(5 * MB).start == 30 * MB

    def test_none_when_nothing_fits(self):
        cache, index = make_cache()
        index.remove(Extent(0, 100 * MB))
        index.add(Extent(20 * MB, 1 * MB))
        assert cache.choose(2 * MB) is None

    def test_cache_size_limits_visibility(self):
        cache, index = make_cache(cache_size=2)
        index.remove(Extent(0, 100 * MB))
        # Three runs; only the two largest are cached.  The small exact
        # fit is invisible, so the larger run gets split instead.
        index.add(Extent(90 * MB, 64 * KB))
        index.add(Extent(40 * MB, 10 * MB))
        index.add(Extent(60 * MB, 20 * MB))
        chosen = cache.choose(64 * KB)
        assert chosen.start in (40 * MB, 60 * MB)


class TestAllocate:
    def test_contiguous_when_run_fits(self):
        cache, index = make_cache()
        pieces = cache.allocate(1 * MB)
        assert len(pieces) == 1
        assert pieces[0].length == 1 * MB
        assert index.total_free == 99 * MB

    def test_fragments_largest_first(self):
        cache, index = make_cache()
        index.remove(Extent(0, 100 * MB))
        index.add(Extent(10 * MB, 3 * MB))
        index.add(Extent(50 * MB, 2 * MB))
        index.add(Extent(80 * MB, 1 * MB))
        pieces = cache.allocate(5 * MB)
        assert sum(p.length for p in pieces) == 5 * MB
        assert pieces[0] == Extent(10 * MB, 3 * MB)   # largest first
        assert pieces[1] == Extent(50 * MB, 2 * MB)

    def test_raises_when_volume_full(self):
        cache, index = make_cache()
        index.remove(Extent(0, 100 * MB))
        index.add(Extent(0, 1 * MB))
        with pytest.raises(AllocationError):
            cache.allocate(2 * MB)

    def test_size_validation(self):
        cache, _ = make_cache()
        with pytest.raises(ConfigError):
            cache.allocate(0)


class TestTryExtend:
    def test_extends_into_free_neighbour(self):
        cache, index = make_cache()
        [first] = cache.allocate(1 * MB)
        ext = cache.try_extend(first.end, 64 * KB)
        assert ext == Extent(first.end, 64 * KB)

    def test_no_extension_when_space_taken(self):
        cache, index = make_cache()
        [first] = cache.allocate(1 * MB)
        index.remove(Extent(first.end, 4 * KB))  # someone else took it
        assert cache.try_extend(first.end, 64 * KB) is None

    def test_partial_extension_in_band(self):
        cache, index = make_cache()
        index.remove(Extent(0, 100 * MB))
        index.add(Extent(1 * MB, 32 * KB))  # small band run
        ext = cache.try_extend(1 * MB, 64 * KB)
        assert ext == Extent(1 * MB, 32 * KB)  # takes what's there

    def test_out_of_band_requires_full_fit(self):
        cache, index = make_cache()
        index.remove(Extent(0, 100 * MB))
        index.add(Extent(50 * MB, 32 * KB))
        assert cache.try_extend(50 * MB, 64 * KB) is None

    def test_stickiness_hysteresis(self):
        cache, index = make_cache()
        index.remove(Extent(0, 100 * MB))
        index.add(Extent(50 * MB, 2 * MB))    # the run being eaten
        index.add(Extent(70 * MB, 10 * MB))   # a much larger competitor
        # 2 MB < 0.5 * 10 MB: the growing file abandons its run.
        assert cache.try_extend(50 * MB, 64 * KB, stickiness=0.5) is None
        # With stickiness 0 it always extends.
        ext = cache.try_extend(50 * MB, 64 * KB, stickiness=0.0)
        assert ext == Extent(50 * MB, 64 * KB)

    def test_band_runs_always_sticky(self):
        cache, index = make_cache()
        index.remove(Extent(0, 100 * MB))
        index.add(Extent(1 * MB, 2 * MB))     # in band
        index.add(Extent(70 * MB, 20 * MB))   # huge competitor
        ext = cache.try_extend(1 * MB, 64 * KB, stickiness=0.9)
        assert ext == Extent(1 * MB, 64 * KB)

    def test_stickiness_validation(self):
        cache, _ = make_cache()
        with pytest.raises(ConfigError):
            cache.try_extend(0, 64 * KB, stickiness=1.5)
