"""Policy-aware read-sweep measurement (the Figure 1/4 path).

``measure_read_throughput`` routes through ``read_many`` when the
store's device policy asks for batching or elevator reordering (or the
store models overlapped shard lanes) so those knobs actually govern
the measured I/O; with the default policy it keeps the historical
per-object ``get`` loop.  The parity contract: under ``policy=none``
the measurement is *identical* — same keys drawn, same device time,
same seeks — to the pre-policy implementation (an inline
``measure`` + ``read_sweep``), so every committed figure baseline
stays comparable.
"""

import pytest

from repro.backends.registry import build_store
from repro.backends.spec import StoreSpec
from repro.core.throughput import (
    make_read_rng,
    measure,
    measure_read_throughput,
)
from repro.core.workload import (
    ConstantSize,
    WorkloadSpec,
    bulk_load,
    read_sweep,
)
from repro.disk.policy import DevicePolicy
from repro.errors import ConfigError
from repro.rng import substream
from repro.units import KB, MB

NREADS = 24


def aged_store(spec: StoreSpec):
    store = build_store(spec)
    state = bulk_load(store, WorkloadSpec(sizes=ConstantSize(256 * KB),
                                          target_occupancy=0.4),
                      substream(5, "workload"))
    # A little churn scatters the population so reordering matters.
    for _ in range(len(state.keys)):
        key = state.rng.choice(state.keys)
        store.overwrite(key, size=256 * KB)
    return store, state


def legacy_measurement(store, state, rng):
    """The pre-policy implementation, verbatim."""
    with measure(store, "read-sweep") as phase:
        phase.add_bytes(read_sweep(store, state, NREADS, rng))
    return phase.result


class TestPolicyNoneParity:
    @pytest.mark.parametrize("backend", ["lfs", "filesystem"])
    def test_default_policy_matches_old_per_object_path(self, backend):
        # Two identically built and aged stores: a sweep moves the disk
        # head, so comparing two sweeps on one store would not be fair.
        spec = StoreSpec(backend, volume_bytes=64 * MB)
        store, state = aged_store(spec)
        store2, state2 = aged_store(spec)
        legacy = legacy_measurement(store, state, make_read_rng(5))
        new = measure_read_throughput(store2, state2, NREADS,
                                      make_read_rng(5))
        assert new.logical_bytes == legacy.logical_bytes
        assert new.window.read_time_s == pytest.approx(
            legacy.window.read_time_s, rel=1e-12)
        assert new.window.cpu_time_s == pytest.approx(
            legacy.window.cpu_time_s, rel=1e-12)
        assert new.seeks == legacy.seeks
        assert new.window.requests == legacy.window.requests
        assert new.mbps == pytest.approx(legacy.mbps, rel=1e-12)
        # No overlap model on a single volume: wall == summed.
        assert new.wall_s == new.elapsed_s

    def test_both_paths_draw_the_same_keys(self):
        spec = StoreSpec("lfs", volume_bytes=64 * MB)
        store, state = aged_store(spec)
        per_object = measure_read_throughput(store, state, NREADS,
                                             make_read_rng(9),
                                             via_read_many=False)
        batched = measure_read_throughput(store, state, NREADS,
                                          make_read_rng(9),
                                          via_read_many=True)
        # Same rng -> same key population -> same logical bytes.
        assert batched.logical_bytes == per_object.logical_bytes


class TestPolicyRouting:
    def test_policy_with_reorder_routes_through_read_many(self):
        plain = StoreSpec("lfs", volume_bytes=64 * MB)
        clook = StoreSpec("lfs", volume_bytes=64 * MB,
                          policy=DevicePolicy(batch_size=16,
                                              reorder="clook"))
        store_a, state_a = aged_store(plain)
        store_b, state_b = aged_store(clook)
        base = measure_read_throughput(store_a, state_a, NREADS,
                                       make_read_rng(5))
        elevator = measure_read_throughput(store_b, state_b, NREADS,
                                           make_read_rng(5))
        # The elevator only helps if the sweep went through read_many:
        # batched submission collapses per-object requests and C-LOOK
        # cuts seeks on the scattered aged population.
        assert elevator.window.requests < base.window.requests
        assert elevator.seeks <= base.seeks
        assert elevator.window.read_time_s < base.window.read_time_s

    def test_overlap_store_reports_lower_wall_time(self):
        spec = StoreSpec("lfs", volume_bytes=96 * MB, shards=4,
                         overlap=True)
        store, state = aged_store(spec)
        result = measure_read_throughput(store, state, NREADS,
                                         make_read_rng(5))
        # Sharded fan-out overlaps: wall strictly below the summed
        # model, never below the slowest lane (makespan envelope).
        assert result.wall_s < result.elapsed_s
        assert result.wall_mbps > result.mbps

    def test_nreads_validation_on_read_many_path(self):
        spec = StoreSpec("lfs", volume_bytes=64 * MB)
        store, state = aged_store(spec)
        with pytest.raises(ConfigError):
            measure_read_throughput(store, state, 0, make_read_rng(5),
                                    via_read_many=True)
