"""Tests for the textbook allocation policies."""

import pytest

from repro.alloc.extent import Extent
from repro.alloc.freelist import FreeExtentIndex
from repro.alloc.policy import (
    BestFit,
    FirstFit,
    NextFit,
    WorstFit,
    allocate_contiguous,
    allocate_fragmented,
    make_policy,
    policy_names,
)
from repro.errors import AllocationError, ConfigError


def make_index_with_holes() -> FreeExtentIndex:
    """Free runs: [0,100) [200,250) [400,700)."""
    index = FreeExtentIndex(1000)
    index.remove(Extent(100, 100))
    index.remove(Extent(250, 150))
    index.remove(Extent(700, 300))
    return index


class TestPolicyChoices:
    def test_first_fit(self):
        index = make_index_with_holes()
        assert FirstFit().choose(index, 40) == Extent(0, 100)
        assert FirstFit().choose(index, 120) == Extent(400, 300)

    def test_best_fit(self):
        index = make_index_with_holes()
        assert BestFit().choose(index, 40) == Extent(200, 50)
        assert BestFit().choose(index, 60) == Extent(0, 100)

    def test_worst_fit(self):
        index = make_index_with_holes()
        assert WorstFit().choose(index, 40) == Extent(400, 300)
        assert WorstFit().choose(index, 400) is None

    def test_next_fit_roves(self):
        index = make_index_with_holes()
        policy = NextFit()
        first = policy.choose(index, 40)
        assert first == Extent(0, 100)
        index.remove(first.take_front(40)[0])
        second = policy.choose(index, 40)
        assert second.start >= 40  # cursor moved past the first carve

    def test_registry(self):
        assert set(policy_names()) == {
            "first_fit", "best_fit", "worst_fit", "next_fit"
        }
        for name in policy_names():
            assert make_policy(name).name == name

    def test_unknown_policy(self):
        with pytest.raises(ConfigError):
            make_policy("magic_fit")


class TestAllocateContiguous:
    def test_carves_from_front(self):
        index = make_index_with_holes()
        ext = allocate_contiguous(index, 40, FirstFit())
        assert ext == Extent(0, 40)
        assert index.run_starting_at(40) == Extent(40, 60)

    def test_raises_when_no_run_fits(self):
        index = make_index_with_holes()
        with pytest.raises(AllocationError):
            allocate_contiguous(index, 301, FirstFit())

    def test_size_must_be_positive(self):
        with pytest.raises(ConfigError):
            allocate_contiguous(make_index_with_holes(), 0, FirstFit())


class TestAllocateFragmented:
    def test_single_piece_when_possible(self):
        index = make_index_with_holes()
        pieces = allocate_fragmented(index, 250, FirstFit())
        assert pieces == [Extent(400, 250)]

    def test_splits_when_needed(self):
        index = make_index_with_holes()
        pieces = allocate_fragmented(index, 420, BestFit())
        assert sum(p.length for p in pieces) == 420
        assert len(pieces) >= 2
        # No overlap among the pieces.
        for i, a in enumerate(pieces):
            for b in pieces[i + 1:]:
                assert not a.overlaps(b)

    def test_volume_full(self):
        index = make_index_with_holes()
        with pytest.raises(AllocationError):
            allocate_fragmented(index, 500, FirstFit())

    def test_conservation(self):
        index = make_index_with_holes()
        before = index.total_free
        pieces = allocate_fragmented(index, 300, WorstFit())
        assert index.total_free == before - 300
        for piece in pieces:
            index.add(piece)
        assert index.total_free == before


class TestSingleSizeOptimality:
    """Best/first/worst fit all behave optimally when every object has
    the same size (the paper's Section 5.4 intuition) — in a pure
    serial alloc/free cycle with no perturbation, no fragmentation."""

    @pytest.mark.parametrize("policy_name", policy_names())
    def test_constant_size_no_fragmentation(self, policy_name):
        index = FreeExtentIndex(1000)
        policy = make_policy(policy_name)
        live: list[Extent] = []
        for _ in range(10):
            live.append(allocate_contiguous(index, 100, policy))
        import random

        rng = random.Random(1)
        for _ in range(200):
            victim = live.pop(rng.randrange(len(live)))
            index.add(victim)
            replacement = allocate_contiguous(index, 100, policy)
            live.append(replacement)
            index.check_invariants()
        # Every allocation remained a single extent — and the free space
        # never became so diced that a request had to fail.
        assert len(live) == 10
