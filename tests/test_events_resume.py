"""Checkpoint/resume and crash coverage for the event-queue simulator.

Two halves:

* **Resume identity** — an aging run over a ``queue=event`` store
  (closed and poisson arrivals), checkpointed mid-way, killed, and
  resumed, reproduces the uninterrupted run record *exactly* —
  including every latency-percentile field of every
  :class:`~repro.core.results.AgeSample`.  The queue simulator's whole
  state (FIFO deques, in-service heap, arrival RNG, charged frontier)
  rides inside the pickled store, so a resume picks up mid-stream
  without re-deriving or double-charging anything.
* **Kill-point matrix** — crashes injected at every write event of a
  churn workload over an event-queued 3-shard store.  After each
  crash the scheduler's books must balance: requests that were queued
  but never dispatched when the crash hit are simply gone (the crash
  predates their I/O), never double-charged — after a drain,
  ``submitted == completed ==`` the histogram count, the queue is
  empty, and a fresh identical run reproduces identical accounting.
"""

import pytest

from crashsim import CrashClock, FaultyDevice, kill_point_matrix

from repro.backends.file_backend import FileBackend
from repro.backends.sharded import ShardedStore
from repro.backends.spec import StoreSpec
from repro.core.experiment import ExperimentConfig, ExperimentRunner
from repro.core.workload import ConstantSize
from repro.disk.geometry import scaled_disk
from repro.errors import CrashPoint
from repro.fs.filesystem import FsConfig
from repro.units import KB, MB

AGES = (0.0, 1.0, 2.0)

ARRIVALS = {
    "closed": "closed",
    "poisson": "poisson:rate=400:seed=7",
}


def config_for(arrival_kind: str) -> ExperimentConfig:
    spec = StoreSpec(
        "filesystem", volume_bytes=96 * MB, shards=3, overlap=True,
        queue="event", queue_depth=16, arrival=ARRIVALS[arrival_kind],
    )
    return ExperimentConfig(
        store=spec,
        sizes=ConstantSize(256 * KB),
        occupancy=0.4,
        ages=AGES,
        reads_per_sample=8,
        seed=13,
    )


class _Killed(Exception):
    """Stands in for SIGKILL right after a checkpoint lands."""


def run_interrupted(config, directory, kill_after_age):
    def killer(phase: str, value: float) -> None:
        if phase == "checkpoint" and value == kill_after_age:
            raise _Killed

    runner = ExperimentRunner(config, progress=killer,
                              checkpoint_dir=directory)
    with pytest.raises(_Killed):
        runner.run()


class TestEventResumeIdentity:
    @pytest.mark.parametrize("arrival_kind", ["closed", "poisson"])
    @pytest.mark.parametrize("kill_after_age", [0.0, 1.0])
    def test_killed_and_resumed_equals_uninterrupted(
            self, tmp_path, arrival_kind, kill_after_age):
        config = config_for(arrival_kind)
        baseline = ExperimentRunner(config).run()
        run_interrupted(config, tmp_path, kill_after_age)
        resumed = ExperimentRunner(config, checkpoint_dir=tmp_path,
                                   resume=True).run()
        # Full record equality — every sample's throughput numbers AND
        # its latency percentiles (read_lat_*) come out identical.
        assert resumed.to_dict() == baseline.to_dict()

    def test_baseline_actually_records_latency(self):
        """Guard the identity test against vacuity: the event run must
        produce non-trivial sojourn distributions to compare."""
        result = ExperimentRunner(config_for("poisson")).run()
        assert all(s.read_lat_count > 0 for s in result.samples)
        assert any(s.read_lat_p99_s > 0.0 for s in result.samples)
        assert all(s.read_lat_p50_s <= s.read_lat_p95_s
                   <= s.read_lat_p99_s <= s.read_lat_max_s
                   for s in result.samples)

    def test_config_echo_records_queue_knobs(self, tmp_path):
        """The checkpoint config echo covers the queue fields, so a
        resume under different queue settings is refused as a
        mismatch rather than silently mixing models."""
        from repro.core.experiment import run_experiment
        from repro.errors import ConfigError

        config = config_for("poisson")
        run_interrupted(config, tmp_path, kill_after_age=0.0)
        other = config_for("closed")
        with pytest.raises(ConfigError):
            run_experiment(other, checkpoint_dir=tmp_path, resume=True)


CRASHY_FS_CONFIG_KWARGS = dict(
    mft_zone_bytes=1 * MB,
    log_bytes=64 * KB,
    commit_interval_ops=4,
    metadata_interval_events=0,
)


def build_event_store(clock: CrashClock) -> ShardedStore:
    fs_config = FsConfig(**CRASHY_FS_CONFIG_KWARGS)
    shards = []
    for _ in range(3):
        device = FaultyDevice(scaled_disk(16 * MB), clock=clock)
        backend = FileBackend(device, fs_config=fs_config,
                              write_request=64 * KB)
        backend.fs.crash_hook = clock.hook
        shards.append(backend)
    return ShardedStore(shards, placement="hash", overlap=True,
                        queue="event", queue_depth=8,
                        arrival="poisson:rate=200:seed=3")


def churn(store: ShardedStore) -> None:
    for i in range(9):
        store.put(f"obj-{i}", size=64 * KB)
    for i in (1, 4, 7):
        store.overwrite(f"obj-{i}", size=96 * KB)
    for i in (0, 5):
        store.delete(f"obj-{i}")
    for i in (2, 3, 6):
        store.get(f"obj-{i}")
    for shard in store.shards:
        shard.fs.journal.commit()


def scheduler_books_balance(store: ShardedStore) -> None:
    sched = store.scheduler
    sched.drain()
    # Queued-but-undispatched requests at the crash never became I/O,
    # so they must not linger half-charged: after the drain the books
    # balance exactly — one latency sample per completion, nothing in
    # flight, nothing queued.
    assert sched.submitted == sched.completed == sched.latency.count
    assert sched.queued == 0 and sched.in_flight == 0
    assert sched.wall_time_s >= 0.0
    assert sched.lane_time_s >= 0.0


class TestEventQueueKillMatrix:
    def test_every_kill_point_leaves_balanced_books(self):
        matrix = list(kill_point_matrix(build_event_store, churn))
        crashes = sum(1 for _, crashed, _ in matrix if crashed)
        assert crashes > 20
        for _, crashed, store in matrix:
            for shard in store.shards:
                shard.fs.crash_hook = None
            scheduler_books_balance(store)

    def test_crashed_run_never_double_charges(self):
        """Replay one mid-workload kill point twice: identical crash
        sites yield identical scheduler accounting — the crash path is
        as deterministic as the healthy path, so no retry can charge a
        queued request twice."""
        baseline_clock = CrashClock(None)
        baseline = build_event_store(baseline_clock)
        churn(baseline)
        kill = baseline_clock.events // 2

        def run_once():
            clock = CrashClock(kill)
            store = build_event_store(clock)
            with pytest.raises(CrashPoint):
                churn(store)
            for shard in store.shards:
                shard.fs.crash_hook = None
            sched = store.scheduler
            sched.drain()
            return (sched.submitted, sched.completed,
                    sched.latency.count, sched.wall_time_s,
                    sched.lane_time_s, sched.latency.summary())

        first = run_once()
        second = run_once()
        assert first == second
        submitted, completed, samples, _, _, _ = first
        assert submitted == completed == samples
