"""Tests for the store-spec API: DevicePolicy, StoreSpec, the backend
registry, and the legacy ExperimentConfig/make_store deprecation shim.
"""

import pytest

from repro.alloc.extent import Extent
from repro.backends import (
    BlobBackend,
    FileBackend,
    GfsChunkBackend,
    LfsBackend,
    ShardedStore,
    StoreSpec,
    backend_descriptions,
    backend_names,
    build_store,
    resolve_spec,
)
from repro.core.experiment import ExperimentConfig, make_store, run_experiment
from repro.core.workload import ConstantSize
from repro.db.database import DbConfig
from repro.disk.device import BlockDevice, IoRequest
from repro.disk.geometry import scaled_disk
from repro.disk.policy import DevicePolicy
from repro.errors import ConfigError
from repro.fs.filesystem import FsConfig
from repro.units import KB, MB

SIMPLE_CLASSES = {
    "filesystem": FileBackend,
    "database": BlobBackend,
    "gfs": GfsChunkBackend,
    "lfs": LfsBackend,
}


class TestDevicePolicy:
    def test_defaults_are_historical_behaviour(self):
        policy = DevicePolicy()
        assert policy.batch_size == 0
        assert policy.reorder == "none"
        assert not policy.reorder_flag

    def test_validation(self):
        with pytest.raises(ConfigError):
            DevicePolicy(batch_size=-1)
        with pytest.raises(ConfigError):
            DevicePolicy(reorder="sstf")

    def test_chunks(self):
        items = list(range(10))
        assert [list(c) for c in DevicePolicy().chunks(items)] == [items]
        assert [list(c) for c in
                DevicePolicy(batch_size=4).chunks(items)] == \
            [[0, 1, 2, 3], [4, 5, 6, 7], [8, 9]]
        assert list(DevicePolicy(batch_size=4).chunks([])) == []

    def test_round_trip_dict(self):
        policy = DevicePolicy(batch_size=16, reorder="clook")
        assert DevicePolicy.from_dict(policy.to_dict()) == policy

    def test_device_submit_defers_to_policy(self):
        """A clook policy reorders batches submitted without an explicit
        reorder argument; an explicit argument still wins."""
        def scattered_batch():
            offsets = [40 * MB, 2 * MB, 30 * MB, 6 * MB, 20 * MB,
                       10 * MB, 50 * MB, 1 * MB]
            return [IoRequest(False, [Extent(off, 64 * KB)])
                    for off in offsets]

        plain = BlockDevice(scaled_disk(64 * MB))
        plain.submit(scattered_batch())
        elevator = BlockDevice(scaled_disk(64 * MB),
                               policy=DevicePolicy(reorder="clook"))
        elevator.submit(scattered_batch())
        assert elevator.clock_s < plain.clock_s
        forced = BlockDevice(scaled_disk(64 * MB),
                             policy=DevicePolicy(reorder="clook"))
        forced.submit(scattered_batch(), reorder=False)
        assert forced.clock_s == plain.clock_s

    def test_submit_policy_chunks_batches(self):
        device = BlockDevice(scaled_disk(64 * MB),
                             policy=DevicePolicy(batch_size=3))
        requests = [IoRequest(True, [Extent(i * MB, 64 * KB)])
                    for i in range(7)]
        device.submit_policy(requests)
        # ceil(7 / 3) = 3 batches -> 3 stats records.
        assert device.stats.requests == 3


class TestStoreSpec:
    def test_parse_full(self):
        spec = StoreSpec.parse(
            "lfs:reorder=clook,batch=8,segment_size=2M,"
            "volume=96M,shards=3,placement=round_robin"
        )
        assert spec.backend == "lfs"
        assert spec.policy == DevicePolicy(batch_size=8, reorder="clook")
        assert spec.option("segment_size") == "2M"  # converted at build
        assert spec.volume_bytes == 96 * MB
        assert spec.shards == 3
        assert spec.placement == "round_robin"

    def test_parse_default_backend(self):
        spec = StoreSpec.parse(":reorder=clook",
                               default_backend="database")
        assert spec.backend == "database"
        with pytest.raises(ConfigError):
            StoreSpec.parse(":reorder=clook")

    def test_parse_rejects_bad_items(self):
        with pytest.raises(ConfigError):
            StoreSpec.parse("lfs:segment_size")
        with pytest.raises(ConfigError):
            StoreSpec.parse("lfs:reorder=sstf")
        with pytest.raises(ConfigError):
            StoreSpec.parse("lfs:placement=zodiac")

    def test_parse_background_rates(self):
        spec = StoreSpec.parse(
            "lfs:shards=2,rebalance_rate=0.5,checkpoint_rate=0.25")
        assert spec.rebalance_rate == 0.5
        assert spec.checkpoint_rate == 0.25
        assert spec.to_dict()["rebalance_rate"] == 0.5
        assert spec.to_dict()["checkpoint_rate"] == 0.25
        # checkpoint_rate=0 means uncharged (the historical model) and
        # is valid; rebalance_rate=0 would mean "never runs" and is not.
        assert StoreSpec.parse("lfs:checkpoint_rate=0").checkpoint_rate \
            == 0.0
        with pytest.raises(ConfigError):
            StoreSpec.parse("lfs:rebalance_rate=0")
        with pytest.raises(ConfigError):
            StoreSpec.parse("lfs:rebalance_rate=1.5")
        with pytest.raises(ConfigError):
            StoreSpec.parse("lfs:checkpoint_rate=1.5")
        with pytest.raises(ConfigError):
            StoreSpec.parse("lfs:checkpoint_rate=nope")

    def test_validation(self):
        with pytest.raises(ConfigError):
            StoreSpec("lfs", volume_bytes=0)
        with pytest.raises(ConfigError):
            StoreSpec("lfs", shards=0)
        with pytest.raises(ConfigError):
            StoreSpec("")

    def test_shard_specs_split_volume(self):
        spec = StoreSpec("lfs", volume_bytes=96 * MB, shards=3)
        subs = spec.shard_specs()
        assert len(subs) == 3
        assert all(s.volume_bytes == 32 * MB for s in subs)
        assert all(s.shards == 1 for s in subs)

    def test_to_dict_records_policy_and_layout(self):
        spec = StoreSpec("lfs", shards=4,
                         policy=DevicePolicy(batch_size=16,
                                             reorder="clook"))
        payload = spec.to_dict()
        assert payload["policy"] == {"batch_size": 16,
                                     "reorder": "clook"}
        assert payload["shards"] == 4
        assert payload["placement"] == "hash"


class TestRegistry:
    def test_registry_lists_all_backends(self):
        names = backend_names()
        assert len(names) >= 5
        for expected in ("filesystem", "database", "gfs", "lfs",
                         "sharded"):
            assert expected in names
        descriptions = backend_descriptions()
        assert all(descriptions[name] for name in names)

    @pytest.mark.parametrize("name", sorted(SIMPLE_CLASSES))
    def test_build_store_every_backend(self, name):
        store = build_store(StoreSpec(name, volume_bytes=64 * MB))
        assert isinstance(store, SIMPLE_CLASSES[name])
        assert store.device.policy == DevicePolicy()

    def test_build_store_converts_options(self):
        store = build_store(
            StoreSpec.parse("lfs:segment_size=2M,volume=64M"))
        assert store.segment_size == 2 * MB

    def test_build_store_threads_policy(self):
        spec = StoreSpec.parse("gfs:chunk_size=8M,reorder=clook,batch=4,"
                               "volume=64M")
        store = build_store(spec)
        assert store.device.policy == DevicePolicy(batch_size=4,
                                                   reorder="clook")

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigError):
            build_store(StoreSpec("oracle"))

    def test_unknown_option_rejected(self):
        with pytest.raises(ConfigError):
            build_store(StoreSpec("lfs", volume_bytes=64 * MB,
                                  options={"chunk_size": 8 * MB}))

    def test_object_option_type_checked(self):
        with pytest.raises(ConfigError):
            build_store(StoreSpec("filesystem", volume_bytes=64 * MB,
                                  options={"fs_config": "naive"}))

    def test_sharded_pseudo_backend_desugars(self):
        spec = resolve_spec(
            StoreSpec.parse("sharded:inner=gfs,chunk_size=8M,volume=64M"))
        assert spec.backend == "gfs"
        assert spec.shards == 2  # composite implies at least two
        store = build_store(
            StoreSpec.parse("sharded:inner=gfs,chunk_size=8M,volume=64M"))
        assert isinstance(store, ShardedStore)
        assert all(isinstance(s, GfsChunkBackend) for s in store.shards)

    def test_sharded_does_not_nest(self):
        with pytest.raises(ConfigError):
            build_store(StoreSpec.parse("sharded:inner=sharded"))

    def test_shards_wrap_any_backend(self):
        store = build_store(StoreSpec("lfs", volume_bytes=96 * MB,
                                      shards=3))
        assert isinstance(store, ShardedStore)
        assert len(store.shards) == 3


def _sizes():
    return ConstantSize(256 * KB)


class TestDeprecationShim:
    """Legacy ExperimentConfig fields + bare make_store still build
    identical stores, with a DeprecationWarning."""

    LEGACY = [
        dict(backend="filesystem"),
        dict(backend="filesystem", index_kind="naive", size_hints=True),
        dict(backend="filesystem", fs_config=FsConfig(index_kind="naive")),
        dict(backend="database"),
        dict(backend="database", db_config=DbConfig(write_request=128 * KB)),
        dict(backend="gfs"),
        dict(backend="lfs"),
    ]

    @pytest.mark.parametrize("legacy", LEGACY,
                             ids=lambda d: "-".join(map(str, d.values())))
    def test_shim_builds_identical_store(self, legacy):
        config = ExperimentConfig(sizes=_sizes(), volume_bytes=64 * MB,
                                  **legacy)
        with pytest.warns(DeprecationWarning):
            shimmed = make_store(config)
        direct = build_store(config.resolved_spec())
        assert type(shimmed) is type(direct)
        assert shimmed.name == direct.name

    def test_legacy_and_spec_paths_agree(self):
        legacy = ExperimentConfig(backend="filesystem", sizes=_sizes(),
                                  volume_bytes=64 * MB,
                                  index_kind="naive", size_hints=True)
        via_spec = ExperimentConfig(
            store=StoreSpec("filesystem", volume_bytes=64 * MB,
                            options={"index_kind": "naive",
                                     "size_hints": True}),
            sizes=_sizes(), size_hints=False,
        )
        assert legacy.to_dict()["store"] == via_spec.to_dict()["store"]
        assert legacy.effective_index_kind() == \
            via_spec.effective_index_kind() == "naive"
        a = build_store(legacy.resolved_spec())
        b = build_store(via_spec.resolved_spec())
        assert type(a) is type(b)
        assert type(a.fs.free_index) is type(b.fs.free_index)

    def test_spec_path_rejects_legacy_knobs(self):
        with pytest.raises(ConfigError):
            ExperimentConfig(store=StoreSpec("filesystem"),
                             sizes=_sizes(), index_kind="naive")
        with pytest.raises(ConfigError):
            ExperimentConfig(store=StoreSpec("lfs"), backend="gfs",
                             sizes=_sizes())

    def test_spec_path_derives_legacy_fields(self):
        spec = StoreSpec("lfs", volume_bytes=96 * MB,
                         write_request=128 * KB, shards=3)
        config = ExperimentConfig(store=spec, sizes=_sizes())
        assert config.backend == "lfs"
        assert config.volume_bytes == 96 * MB
        assert config.write_request == 128 * KB


class TestRunRecords:
    def test_to_dict_serializes_resolved_spec(self):
        config = ExperimentConfig(
            store=StoreSpec.parse(
                "lfs:reorder=clook,batch=16,volume=96M,shards=3"),
            sizes=_sizes(),
        )
        record = config.to_dict()["store"]
        assert record["backend"] == "lfs"
        assert record["shards"] == 3
        assert record["policy"] == {"batch_size": 16, "reorder": "clook"}

    def test_effective_index_kind_through_sharded_spec(self):
        config = ExperimentConfig(
            store=StoreSpec("filesystem", volume_bytes=96 * MB, shards=3,
                            options={"index_kind": "naive"}),
            sizes=_sizes(),
        )
        assert config.effective_index_kind() == "naive"
        lfs = ExperimentConfig(store=StoreSpec("lfs"), sizes=_sizes())
        assert lfs.effective_index_kind() is None

    def test_experiment_runs_over_sharded_spec(self):
        config = ExperimentConfig(
            store=StoreSpec("filesystem", volume_bytes=96 * MB, shards=3),
            sizes=_sizes(), occupancy=0.3, ages=(0.0, 1.0),
            reads_per_sample=4, seed=5,
        )
        result = run_experiment(config)
        assert len(result.samples) == 2
        assert all(s.read_mbps > 0 for s in result.samples)
        assert result.config["store"]["shards"] == 3


READ_MANY_SPECS = [
    "filesystem:volume=64M",
    "database:volume=64M",
    "gfs:volume=64M,chunk_size=8M",
    "lfs:volume=64M,segment_size=2M",
    "filesystem:volume=96M,shards=3",
]


class TestReadMany:
    @pytest.mark.parametrize("text", READ_MANY_SPECS)
    def test_content_matches_get(self, text):
        store = build_store(StoreSpec.parse(text, store_data=True))
        payloads = {f"k{i}": bytes([i + 1]) * ((i + 1) * 24 * KB)
                    for i in range(6)}
        for key, payload in payloads.items():
            store.put(key, data=payload)
        keys = list(payloads)[::-1]  # scattered, non-insertion order
        results = store.read_many(keys)
        assert results == [store.get(k) for k in keys]
        assert results == [payloads[k] for k in keys]

    @pytest.mark.parametrize("text", READ_MANY_SPECS)
    def test_policy_never_changes_content(self, text):
        store = build_store(StoreSpec.parse(
            text, store_data=True,
            policy=DevicePolicy(batch_size=2, reorder="clook")))
        payloads = {f"k{i}": bytes([i + 1]) * (32 * KB) for i in range(5)}
        for key, payload in payloads.items():
            store.put(key, data=payload)
        keys = list(payloads)[::-1]
        assert store.read_many(keys) == [payloads[k] for k in keys]

    def test_read_many_charges_device_time(self):
        store = build_store(StoreSpec.parse("lfs:volume=64M"))
        for i in range(4):
            store.put(f"k{i}", size=256 * KB)
        before = sum(d.clock_s for d in store.devices())
        assert store.read_many([f"k{i}" for i in range(4)]) == [None] * 4
        assert sum(d.clock_s for d in store.devices()) > before


class TestEventQueueSpec:
    """Grammar and validation of queue=event / depth / arrival."""

    def test_parse_event_queue_grammar(self):
        spec = StoreSpec.parse(
            "lfs:shards=4,overlap=true,queue=event,depth=32,"
            "arrival=poisson:rate=2e3:clients=16:seed=7"
        )
        assert spec.queue == "event"
        assert spec.queue_depth == 32
        assert spec.arrival == "poisson:rate=2e3:clients=16:seed=7"
        resolved = resolve_spec(spec)
        assert resolved.queue == "event"

    def test_defaults_are_the_round_model(self):
        spec = StoreSpec.parse("lfs:shards=4,overlap=true")
        assert spec.queue == "round"
        assert spec.queue_depth == 64
        assert spec.arrival == "closed"

    def test_bad_queue_values_rejected(self):
        with pytest.raises(ConfigError):
            StoreSpec.parse("lfs:shards=4,overlap=true,queue=fifo")
        with pytest.raises(ConfigError):
            StoreSpec.parse("lfs:shards=4,overlap=true,queue=event,"
                            "depth=-1")
        with pytest.raises(ConfigError):
            resolve_spec(StoreSpec.parse(
                "lfs:shards=4,overlap=true,queue=event,"
                "arrival=poisson"))  # poisson needs a rate

    def test_event_requires_overlap(self):
        # Mirrors the PR 5 overlap-on-one-shard rejection: the event
        # queue simulates the overlap scheduler's lanes, so it cannot
        # run without one.
        with pytest.raises(ConfigError, match="overlap"):
            resolve_spec(StoreSpec.parse("lfs:shards=4,queue=event"))

    def test_arrival_requires_event_queue(self):
        with pytest.raises(ConfigError, match="queue=event"):
            resolve_spec(StoreSpec.parse(
                "lfs:shards=4,overlap=true,arrival=poisson:rate=100"))

    def test_shard_specs_clear_queue_options(self):
        spec = StoreSpec.parse(
            "lfs:shards=4,overlap=true,queue=event,depth=8,"
            "arrival=poisson:rate=100,volume=96M"
        )
        for sub in spec.shard_specs():
            assert sub.queue == "round"
            assert sub.queue_depth == 64
            assert sub.arrival == "closed"
            assert not sub.overlap

    def test_to_dict_records_queue_fields(self):
        spec = StoreSpec.parse(
            "lfs:shards=4,overlap=true,queue=event,depth=16,"
            "arrival=poisson:rate=500")
        payload = spec.to_dict()
        assert payload["queue"] == "event"
        assert payload["queue_depth"] == 16
        assert payload["arrival"] == "poisson:rate=500"

    def test_build_store_wires_the_event_scheduler(self):
        from repro.disk.events import EventScheduler

        store = build_store(StoreSpec.parse(
            "lfs:shards=4,overlap=true,queue=event,depth=8,volume=64M"))
        assert isinstance(store.scheduler, EventScheduler)
        assert store.scheduler.depth == 8
        round_store = build_store(StoreSpec.parse(
            "lfs:shards=4,overlap=true,volume=64M"))
        assert not getattr(round_store.scheduler, "is_event", False)
