"""Property-based tests at the system level: filesystem and blob store.

The heavyweight invariant: after ANY sequence of get/put operations,
every object's content reads back byte-exact, the free-space accounting
balances, and the marker scanner agrees with the extent maps.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backends import StoreSpec, build_store
from repro.backends.blob_backend import BlobBackend
from repro.backends.file_backend import FileBackend
from repro.disk.device import BlockDevice
from repro.disk.geometry import scaled_disk
from repro.units import KB, MB


@st.composite
def store_scripts(draw):
    """A schedule of put/overwrite/delete ops on a small key space."""
    return draw(st.lists(
        st.tuples(
            st.sampled_from(["put", "overwrite", "delete", "read"]),
            st.integers(min_value=0, max_value=5),        # key index
            st.integers(min_value=1, max_value=48),       # size in 4 KB
        ),
        max_size=40,
    ))


def run_script(store, script):
    """Apply a script, returning the expected content model."""
    model: dict[str, bytes] = {}
    for op, key_idx, size_units in script:
        key = f"k{key_idx}"
        size = size_units * 4 * KB
        payload = bytes([(key_idx * 37 + size_units) % 255 + 1]) * size
        if op == "put" and key not in model:
            store.put(key, data=payload)
            model[key] = payload
        elif op == "overwrite" and key in model:
            store.overwrite(key, data=payload)
            model[key] = payload
        elif op == "delete" and key in model:
            store.delete(key)
            del model[key]
        elif op == "read" and key in model:
            assert store.get(key) == model[key]
    return model


@given(store_scripts())
@settings(max_examples=40, deadline=None)
def test_filesystem_store_byte_exact(script):
    device = BlockDevice(scaled_disk(32 * MB), store_data=True)
    store = FileBackend(device)
    model = run_script(store, script)
    for key, payload in model.items():
        assert store.get(key) == payload
    store.fs.check_invariants()
    # Conservation: free + live allocations + pending + metadata tile
    # the data region.
    fs = store.fs
    fs.journal.commit()
    live = sum(r.allocated_bytes for r in fs.table)
    nibbles = fs.metadata_traffic.outstanding_bytes
    assert fs.free_bytes + live + nibbles == fs.data_capacity


@given(store_scripts())
@settings(max_examples=25, deadline=None)
def test_sharded_store_byte_exact(script):
    """The composite honours the same heavyweight invariant: any op
    sequence reads back byte-exact, per-shard filesystem invariants
    hold, and composite stats equal the sum of shard stats."""
    store = build_store(StoreSpec("filesystem", volume_bytes=96 * MB,
                                  store_data=True, shards=3))
    model = run_script(store, script)
    for key, payload in model.items():
        assert store.get(key) == payload
    assert store.keys() == list(model)  # insertion order survives
    for shard in store.shards:
        shard.fs.check_invariants()
    per = store.shard_stats()
    total = store.store_stats()
    assert total.objects == sum(s.objects for s in per) == len(model)
    assert total.live_bytes == sum(s.live_bytes for s in per)
    assert total.free_bytes == sum(s.free_bytes for s in per)
    assert total.capacity == sum(s.capacity for s in per)


@given(store_scripts())
@settings(max_examples=40, deadline=None)
def test_database_store_byte_exact(script):
    device = BlockDevice(scaled_disk(32 * MB), store_data=True)
    store = BlobBackend(device)
    model = run_script(store, script)
    for key, payload in model.items():
        assert store.get(key) == payload
    store.db.check_invariants()


@given(store_scripts())
@settings(max_examples=25, deadline=None)
def test_marker_scan_agrees_with_extent_maps(script):
    from repro.core.fragmentation import MarkerScanner, fragment_counts
    from repro.core.repository import LargeObjectRepository

    device = BlockDevice(scaled_disk(32 * MB), store_data=True)
    repo = LargeObjectRepository(FileBackend(device), tag_content=True)
    for op, key_idx, size_units in script:
        key = f"k{key_idx}"
        size = max(size_units * 4 * KB, 4 * KB)
        if op == "put" and not repo.exists(key):
            repo.put(key, size=size)
        elif op == "overwrite" and repo.exists(key):
            repo.replace(key, size=size)
        elif op == "delete" and repo.exists(key):
            repo.delete(key)
    live_ids = {repo.object_id(k) for k in repo.keys()}
    marker_counts = MarkerScanner(device).fragment_counts(
        live_ids=live_ids
    )
    extent_counts = {
        repo.object_id(key): count
        for key, count in fragment_counts(repo.store).items()
    }
    assert marker_counts == extent_counts


@given(st.lists(st.integers(min_value=1, max_value=64),
                min_size=1, max_size=12))
@settings(max_examples=30, deadline=None)
def test_blob_sizes_round_trip_exactly(size_units):
    """Arbitrary (page-unaligned) blob sizes read back exactly, even
    though storage rounds to pages internally."""
    device = BlockDevice(scaled_disk(32 * MB), store_data=True)
    store = BlobBackend(device)
    for i, units in enumerate(size_units):
        size = units * 1000 + i  # deliberately unaligned
        payload = bytes([i % 255 + 1]) * size
        store.put(f"k{i}", data=payload)
    for i, units in enumerate(size_units):
        size = units * 1000 + i
        got = store.get(f"k{i}")
        assert len(got) == size
        assert got == bytes([i % 255 + 1]) * size
