"""Tests for delayed allocation and background metadata traffic."""

import pytest

from repro.alloc.extent import coalesce
from repro.disk.device import BlockDevice
from repro.disk.geometry import scaled_disk
from repro.errors import ConfigError
from repro.fs.filesystem import FsConfig, SimFilesystem
from repro.fs.metadata_traffic import MetadataTraffic
from repro.units import KB, MB


def make_fs(**overrides):
    defaults = dict(metadata_interval_events=0, mft_zone_bytes=1 * MB,
                    log_bytes=1 * MB, charge_metadata_io=False)
    defaults.update(overrides)
    device = BlockDevice(scaled_disk(64 * MB))
    return SimFilesystem(device, FsConfig(**defaults))


class TestDelayedAllocation:
    def test_appends_buffer_until_flush(self):
        fs = make_fs(delayed_allocation=True)
        fs.create("a")
        fs.append("a", nbytes=64 * KB)
        record = fs.table.lookup("a")
        assert record.allocated_bytes == 0  # nothing allocated yet
        fs.fsync("a")
        assert fs.table.lookup("a").size == 64 * KB
        assert fs.table.lookup("a").allocated_bytes >= 64 * KB

    def test_whole_object_allocated_at_once(self):
        fs = make_fs(delayed_allocation=True)
        fs.create("a")
        for _ in range(16):
            fs.append("a", nbytes=64 * KB)
        fs.fsync("a")
        assert len(coalesce(fs.extent_map("a"))) == 1

    def test_read_triggers_flush(self):
        fs = make_fs(delayed_allocation=True)
        fs.create("a")
        fs.append("a", nbytes=10 * KB)
        fs.read("a")
        assert fs.table.lookup("a").size == 10 * KB

    def test_rename_triggers_flush(self):
        fs = make_fs(delayed_allocation=True)
        fs.create("a")
        fs.append("a", nbytes=10 * KB)
        fs.rename("a", "b")
        assert fs.file_size("b") == 10 * KB

    def test_delete_discards_buffers(self):
        fs = make_fs(delayed_allocation=True)
        fs.create("a")
        fs.append("a", nbytes=10 * KB)
        fs.delete("a")
        fs.journal.commit()
        assert not fs.exists("a")

    def test_content_round_trip_through_buffer(self):
        device = BlockDevice(scaled_disk(64 * MB), store_data=True)
        fs = SimFilesystem(device, FsConfig(
            metadata_interval_events=0, mft_zone_bytes=1 * MB,
            log_bytes=1 * MB, charge_metadata_io=False,
            delayed_allocation=True,
        ))
        fs.create("a")
        fs.append("a", data=b"part one ")
        fs.append("a", data=b"part two")
        assert fs.read("a") == b"part one part two"


class TestMetadataTraffic:
    def test_disabled_when_interval_zero(self):
        fs = make_fs(metadata_interval_events=0)
        for i in range(50):
            fs.create(f"f{i}")
        assert fs.metadata_traffic.nibbles_allocated == 0

    def test_nibbles_allocate_on_schedule(self):
        fs = make_fs(metadata_interval_events=2)
        for i in range(10):
            fs.create(f"f{i}")
        assert fs.metadata_traffic.nibbles_allocated == 5

    def test_outstanding_bounded(self):
        fs = make_fs(metadata_interval_events=1,
                     metadata_max_outstanding=4)
        for i in range(50):
            fs.create(f"f{i}")
        traffic = fs.metadata_traffic
        assert traffic.outstanding_bytes <= 4 * 4 * KB
        assert traffic.nibbles_freed > 0

    def test_release_all(self):
        fs = make_fs(metadata_interval_events=1)
        for i in range(10):
            fs.create(f"f{i}")
        free_before = fs.free_bytes
        fs.metadata_traffic.release_all()
        assert fs.free_bytes > free_before

    def test_full_volume_skips_nibbles(self):
        fs = make_fs(metadata_interval_events=1)
        fs.create("big")
        fs.append("big", nbytes=fs.free_bytes)
        nibbles_before = fs.metadata_traffic.nibbles_allocated
        fs.create("x")  # triggers a nibble attempt on a full volume
        assert fs.metadata_traffic.nibbles_allocated == nibbles_before

    def test_validation(self):
        fs = make_fs()
        with pytest.raises(ConfigError):
            MetadataTraffic(fs.allocator.runcache, interval_events=-1)
        with pytest.raises(ConfigError):
            MetadataTraffic(fs.allocator.runcache, nibble_bytes=0)
        with pytest.raises(ConfigError):
            MetadataTraffic(fs.allocator.runcache, max_outstanding=0)
