"""Property tests: snapshot -> restore -> continue == uninterrupted.

Random get/put/delete streams drive a filesystem-backed store; at a
random cut point the whole store state crosses a serialization boundary
(pickle for the object graph, plus the byte-stable free-index and
journal snapshots, cross-checked against each other on the way back).
The restored store then finishes the stream, and every observable —
free map, O(1) accounting, key order, per-object extent maps, modelled
device time and IoStats — must be identical to a store that ran the
stream uninterrupted.  Both free-space engines are held to this.
"""

import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backends.file_backend import FileBackend
from repro.disk.device import BlockDevice
from repro.disk.geometry import scaled_disk
from repro.fs.filesystem import FsConfig
from repro.persist import (
    cross_check,
    decode_free_index,
    encode_free_index,
    encode_journal,
    rebuild_fs_free_index,
    verify_journal,
)
from repro.units import KB, MB

VOLUME = 48 * MB
KEYS = 12


@st.composite
def op_streams(draw):
    """(ops, cut): a random op stream and where to interrupt it."""
    ops = draw(st.lists(
        st.tuples(
            st.sampled_from(["put", "overwrite", "delete"]),
            st.integers(min_value=0, max_value=KEYS - 1),
            st.integers(min_value=1, max_value=24),  # size in 8 KB units
        ),
        min_size=1, max_size=40,
    ))
    cut = draw(st.integers(min_value=0, max_value=len(ops)))
    return ops, cut


def make_store(kind: str) -> FileBackend:
    return FileBackend(
        BlockDevice(scaled_disk(VOLUME)),
        fs_config=FsConfig(index_kind=kind),
        write_request=64 * KB,
    )


def apply_ops(store: FileBackend, ops) -> None:
    """Deterministic interpretation: invalid ops are skipped the same
    way on every store, so two replays stay in lockstep."""
    for kind, idx, size_units in ops:
        key = f"k{idx}"
        size = size_units * 8 * KB
        if kind == "put":
            if not store.exists(key):
                store.put(key, size=size)
        elif kind == "overwrite":
            if store.exists(key):
                store.overwrite(key, size=size)
        elif store.exists(key):
            store.delete(key)


def assert_identical(a: FileBackend, b: FileBackend) -> None:
    cross_check(a.fs.free_index, b.fs.free_index)
    assert a.fs.free_index.total_free == b.fs.free_index.total_free
    assert a.fs.free_index.largest() == b.fs.free_index.largest()
    assert a.keys() == b.keys()  # insertion order survives the restore
    for key in a.keys():
        assert a.object_extents(key) == b.object_extents(key)
        assert a.meta(key).size == b.meta(key).size
    assert a.fs.journal.snapshot_state() == b.fs.journal.snapshot_state()
    for dev_a, dev_b in zip(a.devices(), b.devices()):
        assert dev_a.clock_s == dev_b.clock_s
        assert dev_a.stats == dev_b.stats
        assert dev_a.head_position == dev_b.head_position


@pytest.mark.parametrize("kind", ["tiered", "naive"])
@given(stream=op_streams())
@settings(max_examples=30, deadline=None)
def test_snapshot_restore_continue_is_identical(kind, stream):
    ops, cut = stream
    uninterrupted = make_store(kind)
    apply_ops(uninterrupted, ops)

    victim = make_store(kind)
    apply_ops(victim, ops[:cut])
    # The serialization boundary: full state + integrity snapshots.
    state_blob = pickle.dumps(victim)
    index_blob = encode_free_index(victim.fs.free_index)
    journal_blob = encode_journal(victim.fs.journal)
    del victim

    restored: FileBackend = pickle.loads(state_blob)
    snapshot = decode_free_index(index_blob)
    cross_check(snapshot, restored.fs.free_index)
    verify_journal(restored.fs.journal, journal_blob)
    cross_check(rebuild_fs_free_index(restored.fs), restored.fs.free_index)

    apply_ops(restored, ops[cut:])
    assert_identical(uninterrupted, restored)
    restored.fs.check_invariants()


@pytest.mark.parametrize("kind", ["tiered", "naive"])
@given(stream=op_streams())
@settings(max_examples=15, deadline=None)
def test_snapshot_is_byte_stable_across_the_boundary(kind, stream):
    """Encoding the restored index reproduces the original bytes."""
    ops, cut = stream
    store = make_store(kind)
    apply_ops(store, ops[:cut])
    blob = encode_free_index(store.fs.free_index)
    assert encode_free_index(decode_free_index(blob)) == blob
