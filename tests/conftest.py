"""Shared fixtures: small devices, filesystems, databases, and stores.

Everything here is deliberately tiny (tens of MB) so the whole suite
runs in seconds; the benches own the realistic scales.
"""

from __future__ import annotations

import pytest

from repro.backends.blob_backend import BlobBackend
from repro.backends.file_backend import FileBackend
from repro.db.database import DbConfig, SimDatabase
from repro.disk.device import BlockDevice
from repro.disk.geometry import scaled_disk
from repro.fs.filesystem import FsConfig, SimFilesystem
from repro.units import MB


@pytest.fixture
def device() -> BlockDevice:
    """64 MB timing-only device."""
    return BlockDevice(scaled_disk(64 * MB))


@pytest.fixture
def content_device() -> BlockDevice:
    """64 MB device that stores written bytes."""
    return BlockDevice(scaled_disk(64 * MB), store_data=True)


@pytest.fixture
def fs(device: BlockDevice) -> SimFilesystem:
    return SimFilesystem(device)


@pytest.fixture
def content_fs(content_device: BlockDevice) -> SimFilesystem:
    return SimFilesystem(content_device)


@pytest.fixture
def quiet_fs_config() -> FsConfig:
    """No metadata traffic, tiny metadata regions — deterministic layout
    for allocation-exactness tests."""
    return FsConfig(
        metadata_interval_events=0,
        mft_zone_bytes=1 * MB,
        log_bytes=1 * MB,
        charge_metadata_io=False,
    )


@pytest.fixture
def quiet_fs(device: BlockDevice, quiet_fs_config: FsConfig) -> SimFilesystem:
    return SimFilesystem(device, quiet_fs_config)


@pytest.fixture
def db(device: BlockDevice) -> SimDatabase:
    return SimDatabase(device, config=DbConfig())


@pytest.fixture
def content_db(content_device: BlockDevice) -> SimDatabase:
    return SimDatabase(content_device, config=DbConfig())


@pytest.fixture
def file_store() -> FileBackend:
    return FileBackend(BlockDevice(scaled_disk(64 * MB)))


@pytest.fixture
def blob_store() -> BlobBackend:
    return BlobBackend(BlockDevice(scaled_disk(64 * MB)))


@pytest.fixture
def content_file_store() -> FileBackend:
    return FileBackend(BlockDevice(scaled_disk(64 * MB), store_data=True))


@pytest.fixture
def content_blob_store() -> BlobBackend:
    return BlobBackend(BlockDevice(scaled_disk(64 * MB), store_data=True))
