"""Tests for the shared blocked sorted-list primitive.

The model checks drive a tiny-load :class:`BlockedList` (so splits and
block deletions happen constantly) against a plain sorted list and a
dict of weights, asserting every query agrees and ``check`` stays
clean.  The freelist and segment store are rebased on this primitive,
so these tests are the first line of defence for both.
"""

import bisect

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CorruptionError
from repro.struct.blockedlist import BlockedList, MaxWeightAugmentation


def model_pred_le(model, key):
    pos = bisect.bisect_right(model, key) - 1
    return model[pos] if pos >= 0 else None


def model_pred_lt(model, key):
    pos = bisect.bisect_left(model, key) - 1
    return model[pos] if pos >= 0 else None


def model_succ_gt(model, key):
    pos = bisect.bisect_right(model, key)
    return model[pos] if pos < len(model) else None


def model_first_ge(model, key):
    pos = bisect.bisect_left(model, key)
    return model[pos] if pos < len(model) else None


class TestBasics:
    def test_insert_iter_len(self):
        bl = BlockedList(load=4)
        for key in [5, 1, 9, 3, 7]:
            bl.insert(key)
        assert list(bl) == [1, 3, 5, 7, 9]
        assert list(bl.iter_desc()) == [9, 7, 5, 3, 1]
        assert len(bl) == 5
        assert bl.first() == 1
        assert bl.last() == 9
        bl.check("basics")

    def test_remove(self):
        bl = BlockedList(load=4)
        for key in range(10):
            bl.insert(key)
        assert bl.remove(4)
        assert not bl.remove(4)
        assert not bl.remove(-1)
        assert list(bl) == [0, 1, 2, 3, 5, 6, 7, 8, 9]
        bl.check("remove")

    def test_contains(self):
        bl = BlockedList(load=2)
        for key in [2, 4, 6]:
            bl.insert(key)
        assert 4 in bl
        assert 3 not in bl
        assert 7 not in bl

    def test_replace_preserving_order(self):
        bl = BlockedList(load=2)
        for key in [10, 20, 30, 40]:
            bl.insert(key)
        bl.replace(20, 25)
        assert list(bl) == [10, 25, 30, 40]
        bl.check("replace")

    def test_replace_missing_key_raises(self):
        bl = BlockedList(load=2)
        bl.insert(1)
        with pytest.raises(CorruptionError):
            bl.replace(2, 3)
        empty = BlockedList(load=2)
        with pytest.raises(CorruptionError):
            empty.replace(0, 1)

    def test_splits_bound_block_size(self):
        bl = BlockedList(load=2)
        for key in range(100):
            bl.insert(key)
        assert all(len(block) < 4 for block in bl.blocks)
        assert len(bl.blocks) > 10
        bl.check("split")

    def test_iter_from(self):
        bl = BlockedList(load=2)
        for key in range(0, 20, 2):
            bl.insert(key)
        assert list(bl.iter_from(7)) == [8, 10, 12, 14, 16, 18]
        assert list(bl.iter_from(8)) == [8, 10, 12, 14, 16, 18]
        assert list(bl.iter_from(19)) == []
        assert list(bl.iter_from(-5)) == list(bl)
        assert list(BlockedList().iter_from(0)) == []

    def test_tuple_keys(self):
        """The size tier stores (length, start) pairs — ordering is lex."""
        bl = BlockedList(load=2)
        for pair in [(4, 100), (4, 50), (2, 300), (8, 0)]:
            bl.insert(pair)
        assert bl.first_ge((4, -1)) == (4, 50)
        assert bl.first_ge((5, -1)) == (8, 0)
        assert bl.last() == (8, 0)
        bl.check("tuples")

    def test_bad_load_rejected(self):
        with pytest.raises(CorruptionError):
            BlockedList(load=1)


class TestAugmentation:
    def test_max_tracked_through_churn(self):
        weights = {}
        bl = BlockedList(load=2, augment=MaxWeightAugmentation(weights.get))
        for key, w in [(0, 5), (10, 9), (20, 9), (30, 1)]:
            weights[key] = w
            bl.insert(key, weight=w)
        assert max(s[0] for s in bl.sums) == 9
        bl.check("aug")
        # Removing one of the tied maxima decrements the count.
        bl.remove(10, weight=9)
        del weights[10]
        bl.check("aug")
        assert max(s[0] for s in bl.sums) == 9
        # Removing the last maximum forces a rescan to the next max.
        bl.remove(20, weight=9)
        del weights[20]
        bl.check("aug")
        assert max(s[0] for s in bl.sums) == 5

    def test_replace_updates_summary(self):
        weights = {}
        bl = BlockedList(load=4, augment=MaxWeightAugmentation(weights.get))
        for key, w in [(0, 3), (10, 7)]:
            weights[key] = w
            bl.insert(key, weight=w)
        del weights[10]
        weights[12] = 2
        bl.replace(10, 12, old_weight=7, new_weight=2)
        bl.check("aug-replace")
        assert bl.sums[0] == (3, 1)


@st.composite
def operations(draw):
    return draw(st.lists(
        st.tuples(
            st.sampled_from(["insert", "remove", "pred_le", "pred_lt",
                             "succ_gt", "first_ge"]),
            st.integers(min_value=0, max_value=200),
        ),
        max_size=120,
    ))


@given(operations(), st.integers(min_value=2, max_value=8))
@settings(max_examples=150, deadline=None)
def test_blockedlist_matches_sorted_list_model(ops, load):
    bl = BlockedList(load=load)
    model: list[int] = []
    for op, key in ops:
        if op == "insert":
            if key not in model:
                bl.insert(key)
                bisect.insort(model, key)
        elif op == "remove":
            assert bl.remove(key) == (key in model)
            if key in model:
                model.remove(key)
        elif op == "pred_le":
            assert bl.pred_le(key) == model_pred_le(model, key)
        elif op == "pred_lt":
            assert bl.pred_lt(key) == model_pred_lt(model, key)
        elif op == "succ_gt":
            assert bl.succ_gt(key) == model_succ_gt(model, key)
        elif op == "first_ge":
            assert bl.first_ge(key) == model_first_ge(model, key)
        bl.check("model")
        assert list(bl) == model
        assert len(bl) == len(model)
    assert list(bl.iter_desc()) == model[::-1]
    if model:
        mid = model[len(model) // 2]
        assert list(bl.iter_from(mid)) == model[len(model) // 2:]


@given(st.lists(
    st.tuples(st.integers(min_value=0, max_value=100),
              st.integers(min_value=1, max_value=50)),
    max_size=80,
))
@settings(max_examples=100, deadline=None)
def test_augmented_summaries_always_fresh(pairs):
    """Insert/remove churn with weights never leaves a stale summary."""
    weights: dict[int, int] = {}
    bl = BlockedList(load=3, augment=MaxWeightAugmentation(weights.get))
    for key, w in pairs:
        if key in weights:
            bl.remove(key, weight=weights.pop(key))
        else:
            weights[key] = w
            bl.insert(key, weight=w)
        bl.check("aug-model")  # check() recomputes and compares summaries
