"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_backends_command(self, capsys):
        assert main(["backends"]) == 0
        out = capsys.readouterr().out
        for name in ("filesystem", "database", "gfs", "lfs"):
            assert name in out

    def test_requires_command(self):
        # --list-backends is a valid bare invocation, so the "pick a
        # subcommand" error now comes from main() rather than argparse.
        with pytest.raises(SystemExit):
            main([])

    def test_list_backends(self, capsys):
        assert main(["--list-backends"]) == 0
        out = capsys.readouterr().out
        names = [line.split(":", 1)[0] for line in out.splitlines() if line]
        assert len(names) >= 5
        for name in ("filesystem", "database", "gfs", "lfs", "sharded"):
            assert name in names

    def test_bad_ages_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--ages", "4,2"])

    def test_bad_backend_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--backend", "oracle"])


class TestRun:
    def test_run_prints_tables(self, capsys):
        code = main([
            "run", "--backend", "filesystem",
            "--object-size", "512K", "--volume", "64M",
            "--occupancy", "0.4", "--ages", "0,1", "--reads", "4",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Fragments per object" in out
        assert "Read throughput" in out
        assert "bulk-load write throughput" in out

    def test_run_writes_json(self, tmp_path, capsys):
        path = tmp_path / "out.json"
        main([
            "run", "--backend", "database",
            "--object-size", "256K", "--volume", "64M",
            "--occupancy", "0.4", "--ages", "0", "--reads", "2",
            "--json", str(path),
        ])
        payload = json.loads(path.read_text())
        assert payload["backend"] == "database"
        assert payload["samples"]

    def test_uniform_sizes(self, capsys):
        code = main([
            "run", "--backend", "filesystem", "--uniform",
            "--object-size", "512K", "--volume", "64M",
            "--occupancy", "0.4", "--ages", "0", "--reads", "2",
        ])
        assert code == 0

    def test_scenario_prints_per_tenant_table(self, tmp_path, capsys):
        path = tmp_path / "scn.json"
        code = main([
            "run", "--store", "lfs:shards=2,overlap=true,queue=event",
            "--scenario", "cdn_churn:tenants=3,seed=5",
            "--volume", "48M", "--occupancy", "0.4",
            "--ages", "0,1", "--reads", "4", "--json", str(path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Per-tenant churn latency" in out
        for tenant in ("tenant-0", "tenant-1", "tenant-2"):
            assert tenant in out
        payload = json.loads(path.read_text())
        assert payload["config"]["scenario"]["name"] == "cdn_churn"
        last = payload["samples"][-1]
        assert sum(t["count"] for t in last["tenant_lat"].values()) \
            == last["scenario_lat"]["count"]

    def test_bad_scenario_rejected(self):
        from repro.errors import ConfigError
        with pytest.raises(ConfigError):
            main([
                "run", "--backend", "filesystem",
                "--scenario", "cdn_churn:shards=4",
                "--volume", "48M", "--ages", "0",
            ])


class TestCompare:
    def test_compare_two_backends(self, tmp_path, capsys):
        path = tmp_path / "cmp.json"
        code = main([
            "compare", "--against", "filesystem", "database",
            "--object-size", "512K", "--volume", "64M",
            "--occupancy", "0.4", "--ages", "0,1", "--reads", "2",
            "--json", str(path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "filesystem" in out and "database" in out
        payload = json.loads(path.read_text())
        assert set(payload) == {"filesystem", "database"}
