"""Integration tests: the paper's qualitative claims at miniature scale.

These run the real experiment driver end to end on small volumes and
assert the *shapes* the paper reports.  The full-scale versions live in
benchmarks/; these miniatures guard the mechanisms against regressions
on every test run.
"""

import pytest

from repro.analysis.compare import (
    check_keeps_growing,
    check_levels_off,
    check_monotonic_increase,
)
from repro.core.experiment import ExperimentConfig, run_experiment
from repro.core.workload import ConstantSize, UniformSize
from repro.units import KB, MB

AGES = (0.0, 1.0, 2.0, 4.0, 6.0, 8.0, 10.0)


def run(backend, *, sizes, volume, occupancy, ages=AGES, seed=7, **kw):
    cfg = ExperimentConfig(
        backend=backend, sizes=sizes, volume_bytes=volume,
        occupancy=occupancy, ages=ages, reads_per_sample=8, seed=seed,
        **kw,
    )
    return run_experiment(cfg)


@pytest.fixture(scope="module")
def fs_large():
    return run("filesystem", sizes=ConstantSize(4 * MB),
               volume=512 * MB, occupancy=0.5)


@pytest.fixture(scope="module")
def db_large():
    return run("database", sizes=ConstantSize(4 * MB),
               volume=512 * MB, occupancy=0.5)


class TestFigure2Shapes:
    """Large-object fragmentation: DB grows ~linearly, FS levels off."""

    def test_both_start_contiguous(self, fs_large, db_large):
        assert fs_large.sample_at(0.0).fragments_per_object == 1.0
        assert db_large.sample_at(0.0).fragments_per_object == 1.0

    def test_db_fragments_faster_than_fs(self, fs_large, db_large):
        fs_final = fs_large.sample_at(10.0).fragments_per_object
        db_final = db_large.sample_at(10.0).fragments_per_object
        assert db_final > 2.0 * fs_final

    def test_db_keeps_growing(self, db_large):
        series = db_large.series("fragments_per_object")
        assert check_keeps_growing("db", series).passed

    def test_db_growth_monotone(self, db_large):
        series = db_large.series("fragments_per_object")
        assert check_monotonic_increase("db", series).passed

    def test_fs_levels_off(self, fs_large):
        series = fs_large.series("fragments_per_object")
        assert check_levels_off("fs", series,
                                max_late_growth=0.55).passed


class TestFigure3Shape:
    """Small objects converge to ~1 fragment / 64 KB for both systems."""

    @pytest.mark.parametrize("backend,low,high", [
        ("filesystem", 2.0, 5.5),
        ("database", 2.5, 6.5),
    ])
    def test_converges_near_four(self, backend, low, high):
        result = run(backend, sizes=ConstantSize(256 * KB),
                     volume=256 * MB, occupancy=0.97,
                     ages=(0.0, 4.0, 8.0, 10.0))
        final = result.sample_at(10.0).fragments_per_object
        assert low <= final <= high


class TestFigure1And4Shapes:
    """Read/write throughput: clean-system DB advantage, aging flips it."""

    @pytest.fixture(scope="class")
    def runs(self):
        out = {}
        for backend in ("filesystem", "database"):
            out[backend] = run(backend, sizes=ConstantSize(512 * KB),
                               volume=256 * MB, occupancy=0.9,
                               ages=(0.0, 2.0, 4.0), seed=11)
        return out

    def test_clean_db_reads_faster(self, runs):
        db0 = runs["database"].sample_at(0.0).read_mbps
        fs0 = runs["filesystem"].sample_at(0.0).read_mbps
        assert db0 > fs0

    def test_db_reads_degrade_with_age(self, runs):
        db = runs["database"]
        assert db.sample_at(4.0).read_mbps < \
            0.75 * db.sample_at(0.0).read_mbps

    def test_fs_reads_stay_stable(self, runs):
        # FS reads degrade far more slowly than the database's (which
        # lose >25% by age four); allow mild decline.
        fs = runs["filesystem"]
        assert fs.sample_at(4.0).read_mbps > \
            0.6 * fs.sample_at(0.0).read_mbps

    def test_break_even_flips_by_age_four(self, runs):
        # Figure 1: by age four, 512 KB objects read faster from files.
        db4 = runs["database"].sample_at(4.0).read_mbps
        fs4 = runs["filesystem"].sample_at(4.0).read_mbps
        assert fs4 > db4

    def test_bulk_load_db_writes_faster(self, runs):
        # Figure 4 / Section 5.2: DB bulk-load writes beat the FS.
        assert runs["database"].bulk_load_write_mbps > \
            1.3 * runs["filesystem"].bulk_load_write_mbps

    def test_db_writes_degrade_after_bulk_load(self, runs):
        db = runs["database"]
        assert db.sample_at(4.0).write_mbps < \
            0.6 * db.bulk_load_write_mbps


class TestFigure5Shape:
    """Constant-size objects fragment about as much as uniform sizes."""

    @pytest.mark.parametrize("backend", ["filesystem", "database"])
    def test_distribution_does_not_matter_much(self, backend):
        const = run(backend, sizes=ConstantSize(4 * MB),
                    volume=512 * MB, occupancy=0.5,
                    ages=(0.0, 4.0, 8.0))
        uniform = run(backend,
                      sizes=UniformSize.around_mean(4 * MB, spread=0.8),
                      volume=512 * MB, occupancy=0.5,
                      ages=(0.0, 4.0, 8.0))
        c = const.sample_at(8.0).fragments_per_object
        u = uniform.sample_at(8.0).fragments_per_object
        # Same order of magnitude — within ~2.5x of each other.
        assert max(c, u) / max(1e-9, min(c, u)) < 2.5
        # And both genuinely fragment.
        assert c > 1.1 and u > 1.1


class TestSizeHintExtension:
    """The paper's proposed interface eliminates FS fragmentation."""

    def test_size_hints_prevent_fragmentation(self):
        plain = run("filesystem", sizes=ConstantSize(2 * MB),
                    volume=256 * MB, occupancy=0.9,
                    ages=(0.0, 4.0))
        hinted = run("filesystem", sizes=ConstantSize(2 * MB),
                     volume=256 * MB, occupancy=0.9,
                     ages=(0.0, 4.0), size_hints=True)
        assert hinted.sample_at(4.0).fragments_per_object < \
            plain.sample_at(4.0).fragments_per_object
        assert hinted.sample_at(4.0).fragments_per_object < 1.6
