"""Unit tests for the event-driven shard queue simulator.

Three families:

* :class:`ArrivalSpec` grammar — parse/round-trip/validation, and the
  deterministic arrival substream.
* :class:`LatencyHistogram` — the streaming estimator against exact
  sorted-sample nearest-rank percentiles on adversarial distributions
  (bimodal, single-sample, all-equal), pinned to the documented
  relative-error bound, plus monotonicity and clamping.
* :class:`EventScheduler` behaviour — closed-mode reduction, poisson
  queueing/blocking (depth, clients), drain, stalls, and mode
  switching.
"""

import math
import pickle
import random

import pytest

from repro.disk.events import (
    ARRIVAL_MODES,
    HIST_REL_ERROR,
    ArrivalSpec,
    EventScheduler,
    EventWindow,
    LatencyHistogram,
)
from repro.disk.schedule import ShardScheduler
from repro.errors import ConfigError


def exact_percentile(values, q):
    """Nearest-rank percentile over the sorted sample (the reference)."""
    ordered = sorted(values)
    rank = min(len(ordered), max(1, math.ceil(q / 100.0 * len(ordered))))
    return ordered[rank - 1]


class TestArrivalSpec:
    def test_parse_closed(self):
        spec = ArrivalSpec.parse("closed")
        assert spec.mode == "closed"
        assert spec.text() == "closed"

    def test_parse_poisson_full(self):
        spec = ArrivalSpec.parse("poisson:rate=2e3:clients=16:seed=9")
        assert spec.rate == 2e3
        assert spec.clients == 16
        assert spec.seed == 9
        assert ArrivalSpec.parse(spec.text()) == spec

    def test_comma_and_colon_are_interchangeable(self):
        a = ArrivalSpec.parse("poisson:rate=100,clients=4")
        b = ArrivalSpec.parse("poisson,rate=100:clients=4")
        assert a == b

    def test_validation(self):
        with pytest.raises(ConfigError):
            ArrivalSpec.parse("uniform")
        with pytest.raises(ConfigError):
            ArrivalSpec.parse("poisson")  # needs a rate
        with pytest.raises(ConfigError):
            ArrivalSpec.parse("poisson:rate=0")
        with pytest.raises(ConfigError):
            ArrivalSpec.parse("poisson:rate=nope")
        with pytest.raises(ConfigError):
            ArrivalSpec.parse("poisson:rate=10:burst=2")
        with pytest.raises(ConfigError):
            ArrivalSpec.parse("closed:rate=10")
        assert "closed" in ARRIVAL_MODES and "poisson" in ARRIVAL_MODES

    def test_closed_rejects_seed_and_clients_too(self):
        """``closed:seed=7`` used to parse silently; closed arrivals
        have no arrival RNG for a seed to feed, so the grammar must
        reject every parameter, not just rate."""
        with pytest.raises(ConfigError,
                           match="closed arrivals take no"):
            ArrivalSpec.parse("closed:seed=7")
        with pytest.raises(ConfigError,
                           match="closed arrivals take no"):
            ArrivalSpec.parse("closed:clients=4")

    def test_arrival_stream_is_deterministic(self):
        spec = ArrivalSpec.parse("poisson:rate=100:seed=3")
        a = [spec.make_rng().expovariate(spec.rate) for _ in range(4)]
        b = [spec.make_rng().expovariate(spec.rate) for _ in range(4)]
        assert a == b
        other = ArrivalSpec.parse("poisson:rate=100:seed=4").make_rng()
        assert [other.expovariate(spec.rate) for _ in range(4)] != a


class TestLatencyHistogram:
    def test_single_sample_is_exact(self):
        hist = LatencyHistogram()
        hist.record(0.0123)
        for q in (0, 50, 95, 99, 100):
            assert hist.percentile(q) == 0.0123
        assert hist.max_s == 0.0123
        assert hist.count == 1

    def test_all_equal_is_exact(self):
        hist = LatencyHistogram()
        for _ in range(1000):
            hist.record(0.004)
        for q in (1, 50, 99):
            assert hist.percentile(q) == 0.004

    def test_bimodal_within_documented_error(self):
        # Half a millisecond, half a second: the p50 boundary sits
        # exactly between the modes, the worst case for a bucketed
        # estimator.
        values = [1e-3] * 500 + [1.0] * 500
        hist = LatencyHistogram()
        for v in values:
            hist.record(v)
        for q in (10, 50, 50.1, 90, 99, 100):
            exact = exact_percentile(values, q)
            estimate = hist.percentile(q)
            assert abs(estimate - exact) <= HIST_REL_ERROR * exact

    def test_random_samples_within_documented_error(self):
        rng = random.Random(11)
        values = [rng.lognormvariate(-6.0, 1.5) for _ in range(2000)]
        hist = LatencyHistogram()
        for v in values:
            hist.record(v)
        for q in (1, 25, 50, 75, 95, 99, 99.9):
            exact = exact_percentile(values, q)
            assert abs(hist.percentile(q) - exact) <= HIST_REL_ERROR * exact

    def test_percentiles_are_monotone_and_clamped(self):
        rng = random.Random(5)
        hist = LatencyHistogram()
        for _ in range(500):
            hist.record(rng.expovariate(100.0))
        estimates = [hist.percentile(q) for q in range(0, 101, 5)]
        assert estimates == sorted(estimates)
        assert estimates[0] >= hist.min_s
        assert estimates[-1] <= hist.max_s

    def test_zero_and_negative_clamp_to_zero_bucket(self):
        hist = LatencyHistogram()
        hist.record(0.0)
        hist.record(-1.0)
        assert hist.count == 2
        assert hist.percentile(50) == 0.0
        assert hist.max_s == 0.0

    def test_empty_histogram(self):
        hist = LatencyHistogram()
        assert hist.percentile(99) == 0.0
        assert hist.mean_s == 0.0
        assert hist.summary()["count"] == 0
        with pytest.raises(ConfigError):
            hist.percentile(101)

    def test_summary_fields(self):
        hist = LatencyHistogram()
        for v in (0.001, 0.002, 0.003):
            hist.record(v)
        summary = hist.summary()
        assert summary["count"] == 3
        assert summary["max_s"] == 0.003
        assert summary["p50_s"] <= summary["p95_s"] <= summary["p99_s"]


class TestClosedMode:
    def test_reduces_to_round_makespan(self):
        event = EventScheduler(4, parallelism=2)
        base = ShardScheduler(parallelism=2)
        rounds = [[0.3, 0.1, 0.2, 0.05], [0.0, 0.0], [1.0], [0.4, 0.4]]
        for lanes in rounds:
            event.record_round(lanes, indices=range(len(lanes)))
            base.record_round(lanes)
        assert event.wall_time_s == base.wall_time_s
        assert event.lane_time_s == base.lane_time_s
        assert event.rounds == base.rounds

    def test_latency_without_queueing_is_the_service_time(self):
        # parallelism=0: one worker per lane, so nothing ever waits
        # and every sojourn is its lane's service time.
        event = EventScheduler(3, parallelism=0)
        event.record_round([0.2, 0.5, 0.1], indices=(0, 1, 2))
        assert event.latency.count == 3
        assert event.latency.max_s == 0.5
        assert event.submitted == event.completed == 3

    def test_serial_latency_accumulates_queueing(self):
        # parallelism=1 serializes the round longest-first; the last
        # (shortest) lane's sojourn is the whole round.
        event = EventScheduler(3, parallelism=1)
        event.record_round([0.2, 0.5, 0.1], indices=(0, 1, 2))
        assert event.latency.max_s == pytest.approx(0.8)
        assert event.wall_time_s == pytest.approx(0.8)

    def test_windows_carry_histograms(self):
        event = EventScheduler(2)
        win = event.start_window("phase")
        assert isinstance(win, EventWindow)
        event.record_round([0.1, 0.2], indices=(0, 1))
        event.end_window(win)
        assert win.latency.count == 2
        event.record_round([0.3], indices=(0,))
        assert win.latency.count == 2       # closed windows stop
        assert event.latency.count == 3     # cumulative keeps going


class TestPoissonMode:
    def make(self, rate=100.0, **kw):
        return EventScheduler(
            2, arrival=f"poisson:rate={rate}", **kw)

    def test_conserves_requests_and_lane_time(self):
        sched = self.make()
        for _ in range(10):
            sched.record_round([0.001, 0.002], indices=(0, 1))
        sched.drain()
        assert sched.submitted == sched.completed == 20
        assert sched.latency.count == 20
        assert sched.lane_time_s == pytest.approx(10 * 0.003)
        assert sched.queued == 0 and sched.in_flight == 0

    def test_saturation_grows_the_tail(self):
        # Service 10x the mean inter-arrival: queues must build and
        # late sojourns dwarf early ones.
        fast = self.make(rate=1000.0)
        slow_service = 0.01
        for _ in range(50):
            fast.record_round([slow_service], indices=(0,))
        fast.drain()
        assert fast.latency.max_s > 10 * slow_service
        assert fast.latency.percentile(99) > fast.latency.percentile(50)

    def test_bounded_depth_blocks_and_bounds_the_queue(self):
        sched = EventScheduler(1, depth=4, arrival="poisson:rate=1e6")
        for _ in range(100):
            sched.record_round([0.01], indices=(0,))
        assert sched.max_queue_depth <= 4
        sched.drain()
        assert sched.completed == 100

    def test_client_cap_bounds_in_flight(self):
        sched = EventScheduler(
            2, arrival="poisson:rate=1e6:clients=3", depth=0)
        peak = 0
        for _ in range(50):
            sched.record_round([0.01, 0.01], indices=(0, 1))
            peak = max(peak, sched.in_flight)
        assert peak <= 3
        sched.drain()
        assert sched.completed == 100

    def test_worker_cap_serializes_across_shards(self):
        # Two shards but one global worker: the second request's shard
        # is idle, yet it must wait for the first request's completion
        # to free the worker — its start is the worker's free time,
        # not its enqueue time.
        sched = EventScheduler(2, parallelism=1,
                               arrival="poisson:rate=1e9")
        sched.record_round([10.0], indices=(0,))
        sched.record_round([2.0], indices=(1,))
        sched.drain()
        # Arrivals are ~nanoseconds apart, so the run serializes:
        # wall covers both services, and the second request's sojourn
        # is almost the entire 12 s, not just its own 2 s service.
        assert sched.wall_time_s == pytest.approx(12.0, abs=1e-3)
        assert sched.latency.max_s == pytest.approx(12.0, abs=1e-3)

    def test_worker_cap_bounds_concurrency_on_the_timeline(self):
        # Four shards, two workers, six equal requests arriving at
        # once: the timeline can never hold more than two in service,
        # so the wall is at least total service / cap.
        sched = EventScheduler(4, parallelism=2,
                               arrival="poisson:rate=1e9")
        for i in range(6):
            sched.record_round([1.0], indices=(i % 4,))
        sched.drain()
        assert sched.wall_time_s >= 3.0 - 1e-6

    def test_wall_time_is_the_completion_frontier(self):
        sched = self.make(rate=10.0)
        sched.record_round([0.5], indices=(0,))
        sched.drain()
        # Arrival happened at some t > 0; wall = completion frontier
        # must cover arrival + service.
        assert sched.wall_time_s > 0.5

    def test_stalls_overlap_the_queue_frontier(self):
        sched = self.make(rate=100.0)
        sched.record_round([0.01], indices=(0,))
        wall_before = sched.wall_time_s
        sched.record_stall(100.0)
        assert sched.wall_time_s == pytest.approx(wall_before + 100.0)
        # The stall pushed the charged frontier past every pending
        # completion, so draining adds no extra wall time.
        sched.drain()
        assert sched.wall_time_s == pytest.approx(wall_before + 100.0)

    def test_end_window_drains_in_flight_work(self):
        sched = self.make(rate=50.0)
        win = sched.start_window("sweep")
        for _ in range(5):
            sched.record_round([0.01, 0.02], indices=(0, 1))
        assert sched.in_flight > 0
        sched.end_window(win)
        assert sched.in_flight == 0
        assert win.latency.count == 10

    def test_set_arrival_switches_modes(self):
        sched = EventScheduler(2)
        sched.record_round([0.1, 0.2], indices=(0, 1))
        closed_wall = sched.wall_time_s
        sched.set_arrival("poisson:rate=100")
        sched.record_round([0.01, 0.01], indices=(0, 1))
        sched.drain()
        assert sched.wall_time_s > closed_wall
        assert sched.latency.count == 4

    def test_identical_seeds_reproduce_identical_runs(self):
        def run():
            sched = EventScheduler(
                2, arrival="poisson:rate=300:seed=5", depth=8)
            for i in range(30):
                sched.record_round([0.001 * (1 + i % 3)],
                                   indices=(i % 2,))
            sched.drain()
            return (sched.wall_time_s, sched.latency.summary())
        assert run() == run()

    def test_pickle_round_trip_mid_flight(self):
        sched = self.make(rate=50.0)
        for _ in range(5):
            sched.record_round([0.01, 0.03], indices=(0, 1))
        assert sched.in_flight > 0
        clone = pickle.loads(pickle.dumps(sched))
        sched.drain()
        clone.drain()
        assert clone.wall_time_s == sched.wall_time_s
        assert clone.latency.summary() == sched.latency.summary()

    def test_validation(self):
        with pytest.raises(ConfigError):
            EventScheduler(0)
        with pytest.raises(ConfigError):
            EventScheduler(2, depth=-1)
        with pytest.raises(ConfigError):
            EventScheduler(2, arrival="poisson")


class TestStallArrivalContract:
    """Pin the stall/arrival timeline contract (module docstring).

    A stall advances the charged frontier by exactly its duration
    (completions already on the timeline overlap with it), and pulls
    the arrival cursor up to that frontier: the submitting driver was
    asleep for the stall, so no request it submits afterwards can have
    "arrived" mid-stall.
    """

    def backlogged(self) -> EventScheduler:
        """One lane, near-instant arrivals, ten seconds of backlog."""
        sched = EventScheduler(1, arrival="poisson:rate=1e6", depth=0)
        for _ in range(10):
            sched.record_round([1.0], indices=(0,))
        return sched

    def test_stall_pulls_the_cursor_to_the_charged_frontier(self):
        sched = self.backlogged()
        # Before the stall the cursor trails far behind where the
        # frontier will land; afterwards they coincide exactly.
        assert sched._arrival_cursor < 1e-3
        sched.record_stall(50.0)
        assert sched._arrival_cursor == sched._charged
        assert sched._charged == pytest.approx(sched.wall_time_s)

    def test_arrivals_after_a_stall_do_not_backdate(self):
        """A request submitted after a stall arrives after it: its
        sojourn is its own service, not the pre-stall backlog it never
        saw.  (Before the fix the cursor stayed behind the frontier and
        the post-stall request inherited ~10 s of phantom queueing.)"""
        sched = self.backlogged()
        sched.record_stall(20.0)
        sched.drain()
        win = sched.start_window("after-stall")
        sched.record_round([0.5], indices=(0,))
        sched.end_window(win)
        assert win.latency.count == 1
        assert win.latency.max_s == pytest.approx(0.5, rel=1e-3)

    def test_backlog_straddling_a_stall_is_not_double_counted(self):
        """Completions pending when the stall lands sit inside the
        stall window: wall grows by exactly the stall, the sojourns
        keep their queueing chain, and the books still balance."""
        sched = self.backlogged()
        wall_before = sched.wall_time_s
        sched.record_stall(30.0)  # longer than the ~10 s backlog
        assert sched.wall_time_s == pytest.approx(wall_before + 30.0)
        sched.drain()  # straddling completions overlap the stall
        assert sched.wall_time_s == pytest.approx(wall_before + 30.0)
        assert sched.submitted == sched.completed == 10
        assert sched.latency.count == 10
        # The backlog's queueing chain survives: the last request
        # still waited behind nine 1 s services.
        assert sched.latency.max_s > 9.0

    def test_zero_and_negative_stalls_are_ignored(self):
        sched = self.backlogged()
        wall = sched.wall_time_s
        cursor = sched._arrival_cursor
        sched.record_stall(0.0)
        sched.record_stall(-1.0)
        assert sched.wall_time_s == wall
        assert sched._arrival_cursor == cursor


class TestBackgroundLane:
    """``record_round(background=True)``: driver bursts, not arrivals.

    Background rounds share the shard queues but enqueue back-to-back
    at the current cursor (no inter-arrival draws) and report into the
    window's ``background_latency``, never its foreground ``latency``.
    """

    def sched(self) -> EventScheduler:
        return EventScheduler(2, arrival="poisson:rate=1000:seed=3",
                              depth=0)

    def test_background_rounds_skip_the_arrival_process(self):
        sched = self.sched()
        win = sched.start_window("w")
        cursor = sched._arrival_cursor
        sched.record_round([0.2, 0.3], background=True)
        # No gaps drawn: the open-loop cursor did not move.
        assert sched._arrival_cursor == cursor
        sched.end_window(win)
        assert win.latency.count == 0
        assert win.background_latency.count == 2
        # The lifetime books still count every completion.
        assert sched.submitted == sched.completed == 2
        assert sched.latency.count == 2

    def test_foreground_queues_behind_an_unthrottled_burst(self):
        sched = self.sched()
        sched.record_round([0.5], indices=(0,), background=True)
        win = sched.start_window("fg")
        sched.record_round([0.001], indices=(0,))
        sched.end_window(win)
        # The foreground request arrived ~1 ms into a 500 ms copy
        # burst on its shard and waited the burst out.
        assert win.latency.count == 1
        assert win.latency.max_s > 0.4

    def test_a_stall_moves_foreground_past_the_burst(self):
        sched = self.sched()
        sched.record_round([0.5], indices=(0,), background=True)
        sched.record_stall(0.5)          # duty-cycle pause at R = 0.5
        win = sched.start_window("fg")
        sched.record_round([0.001], indices=(0,))
        sched.end_window(win)
        # The pause carried the arrival cursor past the burst, so the
        # same foreground request now sees an idle shard.
        assert win.latency.count == 1
        assert win.latency.max_s < 0.05
