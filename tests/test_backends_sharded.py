"""Unit tests for the ShardedStore composite: placement policies,
sticky ownership, cross-shard stats aggregation, and ordering."""

import zlib

import pytest

from repro.backends import ShardedStore, StoreSpec, build_store
from repro.backends.lfs_backend import LfsBackend
from repro.disk.device import BlockDevice
from repro.disk.geometry import scaled_disk
from repro.errors import ConfigError, ObjectNotFoundError
from repro.units import KB, MB


def make_sharded(n=3, *, placement="hash", store_data=False,
                 band_bytes=1 * MB, per_shard=32 * MB):
    shards = [
        LfsBackend(BlockDevice(scaled_disk(per_shard),
                               store_data=store_data),
                   segment_size=2 * MB)
        for _ in range(n)
    ]
    return ShardedStore(shards, placement=placement,
                        band_bytes=band_bytes)


class TestConstruction:
    def test_needs_two_shards(self):
        with pytest.raises(ConfigError):
            make_sharded(1)

    def test_rejects_bad_placement(self):
        with pytest.raises(ConfigError):
            make_sharded(3, placement="zodiac")

    def test_name_carries_layout(self):
        assert make_sharded(3).name == "sharded[3xlfs]"


class TestPlacement:
    def test_hash_is_stable_and_stateless(self):
        a, b = make_sharded(3), make_sharded(3)
        for i in range(20):
            key = f"k{i}"
            a.put(key, size=64 * KB)
            b.put(key, size=64 * KB)
            expected = zlib.crc32(key.encode()) % 3
            assert a.shard_for(key) == b.shard_for(key) == expected

    def test_round_robin_cycles(self):
        store = make_sharded(3, placement="round_robin")
        for i in range(7):
            store.put(f"k{i}", size=64 * KB)
        assert [store.shard_for(f"k{i}") for i in range(7)] == \
            [0, 1, 2, 0, 1, 2, 0]

    def test_size_banded_bands_double(self):
        store = make_sharded(3, placement="size_banded",
                             band_bytes=256 * KB)
        store.put("small", size=64 * KB)        # <= 256K  -> shard 0
        store.put("medium", size=400 * KB)      # <= 512K  -> shard 1
        store.put("large", size=1 * MB)         # beyond   -> last shard
        assert store.shard_for("small") == 0
        assert store.shard_for("medium") == 1
        assert store.shard_for("large") == 2

    def test_placement_is_sticky_across_overwrites(self):
        store = make_sharded(3, placement="size_banded",
                             band_bytes=256 * KB)
        store.put("a", size=64 * KB)
        before = store.shard_for("a")
        store.overwrite("a", size=1 * MB)  # would band elsewhere
        assert store.shard_for("a") == before
        assert store.meta("a").size == 1 * MB
        assert store.meta("a").version == 2

    def test_delete_then_put_replaces(self):
        store = make_sharded(3, placement="round_robin")
        for i in range(3):
            store.put(f"k{i}", size=64 * KB)
        store.delete("k0")
        store.put("k0", size=64 * KB)  # next rotation slot, end of keys
        assert store.shard_for("k0") == 0  # 3 puts later wraps to 0
        assert store.keys() == ["k1", "k2", "k0"]

    def test_duplicate_put_raises_inner_error(self):
        store = make_sharded(3, placement="round_robin")
        store.put("a", size=64 * KB)
        with pytest.raises(ConfigError):
            store.put("a", size=64 * KB)
        # The failed duplicate must not disturb ownership.
        assert store.shard_for("a") == 0

    def test_missing_key_raises(self):
        store = make_sharded(3)
        with pytest.raises(ObjectNotFoundError):
            store.get("ghost")
        with pytest.raises(ObjectNotFoundError):
            store.shard_for("ghost")


class TestAggregation:
    def test_stats_sum_over_shards(self):
        store = make_sharded(3)
        for i in range(12):
            store.put(f"k{i}", size=(i + 1) * 32 * KB)
        per = store.shard_stats()
        total = store.store_stats()
        assert total.objects == sum(s.objects for s in per) == 12
        assert total.live_bytes == sum(s.live_bytes for s in per)
        assert total.free_bytes == sum(s.free_bytes for s in per)
        assert total.capacity == sum(s.capacity for s in per)
        assert total.free_bytes == store.free_bytes()

    def test_devices_concatenate(self):
        store = make_sharded(3)
        devices = store.devices()
        assert len(devices) == 3
        assert len({id(d) for d in devices}) == 3

    def test_object_extents_delegate_to_owner(self):
        store = make_sharded(3)
        store.put("a", size=200 * KB)
        extents = store.object_extents("a")
        owner = store.shards[store.shard_for("a")]
        assert extents == owner.object_extents("a")
        assert sum(e.length for e in extents) >= 200 * KB

    def test_read_many_preserves_input_order(self):
        store = make_sharded(3, store_data=True)
        payloads = {f"k{i}": bytes([i + 1]) * (48 * KB) for i in range(9)}
        for key, payload in payloads.items():
            store.put(key, data=payload)
        keys = sorted(payloads, reverse=True)
        assert store.read_many(keys) == [payloads[k] for k in keys]


class TestSpecIntegration:
    def test_build_store_wires_placement(self):
        store = build_store(
            StoreSpec("lfs", volume_bytes=96 * MB, shards=3,
                      placement="round_robin"))
        assert isinstance(store, ShardedStore)
        assert store.placement == "round_robin"

    def test_band_bytes_flows_from_spec(self):
        store = build_store(
            StoreSpec.parse("lfs:volume=96M,shards=3,"
                            "placement=size_banded,band_bytes=128K"))
        assert store.band_bytes == 128 * KB
