"""Tests for repro.disk.faults: the fault-spec grammar, per-shard
resolution, and the FaultyBlockDevice runtime injectors (transient
errors, slow factors, permanent loss, crash clock)."""

import pytest

from repro.disk.device import BlockDevice
from repro.disk.faults import (
    CrashClock,
    DeviceFaults,
    FaultProfile,
    FaultyBlockDevice,
)
from repro.disk.geometry import scaled_disk
from repro.errors import (
    ConfigError,
    CrashPoint,
    ShardLostError,
    TransientIoError,
)
from repro.units import KB, MB

FULL = "transient:rate=0.0001;slow:shard=2,factor=8;loss:shard=1,at_age=3"


class TestGrammar:
    def test_parse_full_profile(self):
        profile = FaultProfile.parse(FULL)
        transient, slow, loss = profile.clauses
        assert transient.kind == "transient"
        assert transient.rate == pytest.approx(1e-4)
        assert transient.shard is None and transient.ops == "all"
        assert slow.kind == "slow"
        assert slow.shard == 2 and slow.factor == 8.0
        assert loss.kind == "loss"
        assert loss.shard == 1 and loss.at_age == 3.0

    def test_text_round_trips(self):
        profile = FaultProfile.parse(FULL)
        assert FaultProfile.parse(profile.text()) == profile

    def test_colon_and_comma_separators_are_equivalent(self):
        a = FaultProfile.parse("loss:shard=1,at_age=3")
        b = FaultProfile.parse("loss:shard=1:at_age=3")
        assert a == b

    def test_parameter_order_is_irrelevant(self):
        a = FaultProfile.parse("slow:shard=2:factor=8")
        b = FaultProfile.parse("slow:factor=8:shard=2")
        assert a == b

    def test_losses_and_max_shard(self):
        profile = FaultProfile.parse(FULL)
        assert [c.shard for c in profile.losses] == [1]
        assert profile.max_shard() == 2
        assert FaultProfile.parse("transient:rate=0.1").max_shard() is None

    @pytest.mark.parametrize("text", [
        "gremlin:rate=0.1",           # unknown kind
        "transient",                  # rate missing
        "transient:rate=1.5",         # rate out of range
        "transient:rate=0.1:ops=nap", # bad ops
        "slow:shard=2",               # factor missing
        "slow:factor=0",              # factor must be > 0
        "loss:at_age=3",              # shard missing
        "loss:shard=1:color=red",     # unknown parameter
        "transient:rate",             # not key=value
        "",                           # no clauses
    ])
    def test_bad_specs_raise(self, text):
        with pytest.raises(ConfigError):
            FaultProfile.parse(text)


class TestForShard:
    def test_scoped_clauses_follow_their_shard(self):
        profile = FaultProfile.parse(FULL)
        on_2 = profile.for_shard(2)
        assert [c.kind for c in on_2.clauses] == ["transient", "slow"]
        on_0 = profile.for_shard(0)
        assert [c.kind for c in on_0.clauses] == ["transient"]

    def test_loss_never_reaches_a_device(self):
        profile = FaultProfile.parse("loss:shard=1")
        assert profile.for_shard(1).clauses == ()
        assert profile.for_shard(1).device_faults() is None

    def test_transient_seeds_rekeyed_per_shard(self):
        profile = FaultProfile.parse("transient:rate=0.5:seed=9")
        seeds = {profile.for_shard(i).clauses[0].seed for i in range(4)}
        assert len(seeds) == 4  # independent streams per shard
        # ... but deterministically so.
        assert profile.for_shard(2) == profile.for_shard(2)

    def test_shard_scope_is_stripped(self):
        profile = FaultProfile.parse("slow:shard=2:factor=8")
        assert profile.for_shard(2).clauses[0].shard is None


class TestDeviceFaultsResolution:
    def test_none_when_nothing_applies(self):
        assert FaultProfile.parse("loss:shard=0").device_faults() is None
        assert (FaultProfile.parse("slow:shard=2:factor=8")
                .device_faults() is None)

    def test_slow_factors_compose(self):
        profile = FaultProfile.parse("slow:factor=2;slow:factor=3")
        assert profile.device_faults().slow_factor == 6.0

    def test_transient_carries_rate_ops_seed(self):
        faults = (FaultProfile.parse("transient:rate=0.25:ops=read:seed=5")
                  .device_faults())
        assert faults.transient_rate == 0.25
        assert faults.transient_ops == "read"

    def test_rejects_bad_runtime_values(self):
        with pytest.raises(ConfigError):
            DeviceFaults(transient_rate=2.0)
        with pytest.raises(ConfigError):
            DeviceFaults(slow_factor=0.0)


def make_faulty(text=None, **kwargs):
    faults = None
    if text is not None:
        faults = FaultProfile.parse(text).device_faults()
    return FaultyBlockDevice(scaled_disk(64 * MB), faults=faults, **kwargs)


class TestTransientInjection:
    def test_deterministic_across_devices(self):
        def failure_pattern():
            dev = make_faulty("transient:rate=0.5:seed=3")
            pattern = []
            for i in range(40):
                try:
                    dev.read(i * 128 * KB, 64 * KB)
                    pattern.append(False)
                except TransientIoError:
                    pattern.append(True)
            return pattern

        first, second = failure_pattern(), failure_pattern()
        assert first == second
        assert any(first) and not all(first)

    def test_failure_charges_no_time_or_stats(self):
        dev = make_faulty("transient:rate=1.0")
        with pytest.raises(TransientIoError):
            dev.read(1 * MB, 64 * KB)
        assert dev.clock_s == 0.0
        assert dev.stats.seeks == 0 and dev.stats.read_time_s == 0.0

    def test_write_failure_applies_no_content(self):
        dev = make_faulty("transient:rate=1.0:ops=write", store_data=True)
        with pytest.raises(TransientIoError):
            dev.write(0, 8, data=b"12345678")
        assert dev.peek(0, 8) == b"\x00" * 8

    def test_ops_scoping(self):
        dev = make_faulty("transient:rate=1.0:ops=write")
        dev.read(1 * MB, 64 * KB)  # reads pass
        with pytest.raises(TransientIoError):
            dev.write(0, 64 * KB)
        dev = make_faulty("transient:rate=1.0:ops=read")
        dev.write(0, 64 * KB)  # writes pass
        with pytest.raises(TransientIoError):
            dev.read(1 * MB, 64 * KB)


class TestSlowFactor:
    def test_service_times_scale(self):
        plain = BlockDevice(scaled_disk(64 * MB))
        slow = make_faulty("slow:factor=8")
        plain.read(32 * MB, 256 * KB)
        slow.read(32 * MB, 256 * KB)
        assert slow.clock_s == pytest.approx(8 * plain.clock_s)
        assert slow.stats.read_time_s == \
            pytest.approx(8 * plain.stats.read_time_s)

    def test_flush_scales_too(self):
        plain = BlockDevice(scaled_disk(64 * MB))
        slow = make_faulty("slow:factor=8")
        plain.flush()
        slow.flush()
        assert slow.clock_s == pytest.approx(8 * plain.clock_s)


class TestLoss:
    def test_lost_device_raises_on_timed_io(self):
        dev = make_faulty(store_data=True)
        dev.write(0, 8, data=b"treasure")
        assert not dev.lost
        dev.mark_lost()
        assert dev.lost
        with pytest.raises(ShardLostError):
            dev.read(0, 8)
        with pytest.raises(ShardLostError):
            dev.write(0, 64 * KB)
        with pytest.raises(ShardLostError):
            dev.flush()

    def test_untimed_inspection_survives_loss(self):
        dev = make_faulty(store_data=True)
        dev.write(0, 8, data=b"treasure")
        dev.mark_lost()
        # Recovery tooling may still examine the platters.
        assert dev.peek(0, 8) == b"treasure"


class TestCrashClock:
    def test_counts_and_fires_once(self):
        clock = CrashClock(kill_after=2)
        dev = FaultyBlockDevice(scaled_disk(64 * MB), clock=clock)
        dev.write(0, 64 * KB)
        dev.read(1 * MB, 64 * KB)  # reads never tick
        dev.write(128 * KB, 64 * KB)
        with pytest.raises(CrashPoint):
            dev.write(256 * KB, 64 * KB)
        assert clock.fired
        assert dev.write_events == 2

    def test_shared_across_devices(self):
        clock = CrashClock(kill_after=1)
        a = FaultyBlockDevice(scaled_disk(64 * MB), clock=clock)
        b = FaultyBlockDevice(scaled_disk(64 * MB), clock=clock)
        a.write(0, 64 * KB)
        with pytest.raises(CrashPoint):
            b.write(0, 64 * KB)

    def test_torn_write_applies_half_content(self):
        clock = CrashClock(kill_after=0)
        dev = FaultyBlockDevice(scaled_disk(64 * MB), clock=clock,
                                torn=True, store_data=True)
        with pytest.raises(CrashPoint):
            dev.write(0, 8, data=b"ABCDEFGH")
        assert dev.peek(0, 8) == b"ABCD\x00\x00\x00\x00"

    def test_unarmed_clock_never_fires(self):
        dev = make_faulty()
        for i in range(50):
            dev.write(i * 64 * KB, 32 * KB)
        assert dev.write_events == 50
