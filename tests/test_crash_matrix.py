"""Kill-point matrix: crash anywhere, recover, hold the invariants.

The matrix replays a churn workload once per possible crash site —
before, during, and after every journal commit (including the host-side
window between the log force and the free-index publication), during
data and MFT writes, and during checkpoint snapshot writes — and after
every crash asserts the paper's deferred-free rule:

    **no extent is ever allocatable before the commit that freed it is
    durable** — every kill point either recovers to the pre-commit
    state (frees discarded, space orphaned) or completes the commit
    (frees replayed), never a state where an uncommitted free is
    allocatable.

Runs over the tiered engine, the naive reference engine, and a 3-shard
composite, plus the CheckpointManager's own write path.
"""

import pytest

from crashsim import CrashClock, FaultyDevice, kill_point_matrix

from repro.alloc.freelist import INDEX_KINDS
from repro.backends.file_backend import FileBackend
from repro.backends.sharded import ShardedStore
from repro.disk.geometry import scaled_disk
from repro.errors import CrashPoint
from repro.fs.filesystem import FsConfig, SimFilesystem
from repro.persist import CheckpointManager, cross_check, rebuild_fs_free_index
from repro.units import KB, MB

#: Small log region so commits wrap the circular cursor mid-matrix.
CRASHY_FS_CONFIG_KWARGS = dict(
    mft_zone_bytes=1 * MB,
    log_bytes=64 * KB,
    commit_interval_ops=4,
    metadata_interval_events=0,
)


def recover_and_check(fs: SimFilesystem) -> None:
    """Mount-after-crash checks every kill point must pass."""
    # At crash time, non-durable frees must not be allocatable ...
    free_runs = list(fs.free_index)
    pending = fs.journal.pending_frees
    for ext in pending:
        assert not any(run.overlaps(ext) for run in free_runs), \
            f"uncommitted free {ext} was allocatable at crash time"
    replayable = fs.journal.replayable_frees
    report = fs.recover_after_crash()
    # ... recovery replays exactly the durable set and discards the rest.
    assert report.replayed == replayable
    assert report.discarded == pending
    fs.check_invariants()
    free_runs = list(fs.free_index)
    for ext in report.discarded:
        assert not any(run.overlaps(ext) for run in free_runs), \
            f"discarded free {ext} leaked into the free index"
    for ext in report.replayed:
        run = fs.free_index.run_at(ext.start)
        assert run is not None and run.contains_extent(ext), \
            f"replayed free {ext} missing from the free index"
    # The recovered free map must agree with a rebuild from the
    # extent maps — the torn/partial-state detector.
    cross_check(rebuild_fs_free_index(fs), fs.free_index,
                label="post-recovery rebuild")


class TestFilesystemKillMatrix:
    @pytest.mark.parametrize("kind", INDEX_KINDS)
    def test_every_kill_point_recovers(self, kind):
        def build(clock: CrashClock) -> SimFilesystem:
            device = FaultyDevice(scaled_disk(24 * MB), clock=clock)
            fs = SimFilesystem(
                device, FsConfig(index_kind=kind, **CRASHY_FS_CONFIG_KWARGS)
            )
            fs.crash_hook = clock.hook  # host-side commit kill points
            return fs

        def workload(fs: SimFilesystem) -> None:
            for i in range(6):
                name = f"f{i}"
                fs.create(name)
                fs.append(name, nbytes=96 * KB)
                fs.append(name, nbytes=64 * KB)
            for i in range(0, 6, 2):
                fs.delete(f"f{i}")
            fs.safe_write("f1", size=128 * KB)
            fs.safe_write("f3", size=192 * KB)
            fs.journal.commit()

        matrix = list(kill_point_matrix(build, workload))
        crashes = sum(1 for _, crashed, _ in matrix if crashed)
        assert crashes > 20, "matrix exercised too few crash sites"
        for k, crashed, fs in matrix:
            fs.crash_hook = None
            recover_and_check(fs)
            # The recovered volume must be usable: allocate new space.
            name = f"post-crash-{k}"
            fs.create(name)
            fs.append(name, nbytes=32 * KB)
            fs.journal.commit()
            fs.check_invariants()

    def test_torn_data_write_recovers(self):
        """A content-storing device torn mid-write still recovers."""
        def build(clock: CrashClock) -> SimFilesystem:
            device = FaultyDevice(scaled_disk(24 * MB), clock=clock,
                                  torn=True, store_data=True)
            fs = SimFilesystem(device, FsConfig(**CRASHY_FS_CONFIG_KWARGS))
            fs.crash_hook = clock.hook
            return fs

        def workload(fs: SimFilesystem) -> None:
            for i in range(4):
                fs.create(f"f{i}")
                fs.append(f"f{i}", data=bytes([i]) * 64 * KB)
            fs.delete("f0")
            fs.safe_write("f1", data=b"\xbe" * 96 * KB)
            fs.journal.commit()

        for _, crashed, fs in kill_point_matrix(build, workload):
            fs.crash_hook = None
            recover_and_check(fs)
            # Surviving files read back whole (lengths intact even when
            # the torn write scribbled a prefix somewhere).
            for name in fs.list_files():
                data = fs.read(name)
                assert data is not None
                assert len(data) == fs.file_size(name)


class TestShardedKillMatrix:
    def test_every_kill_point_recovers_across_shards(self):
        fs_config = FsConfig(**CRASHY_FS_CONFIG_KWARGS)

        def build(clock: CrashClock) -> ShardedStore:
            shards = []
            for _ in range(3):
                device = FaultyDevice(scaled_disk(16 * MB), clock=clock)
                backend = FileBackend(device, fs_config=fs_config,
                                      write_request=64 * KB)
                backend.fs.crash_hook = clock.hook
                shards.append(backend)
            return ShardedStore(shards, placement="hash")

        def workload(store: ShardedStore) -> None:
            for i in range(9):
                store.put(f"obj-{i}", size=64 * KB)
            for i in (1, 4, 7):
                store.overwrite(f"obj-{i}", size=96 * KB)
            for i in (0, 5):
                store.delete(f"obj-{i}")
            for shard in store.shards:
                shard.fs.journal.commit()

        matrix = list(kill_point_matrix(build, workload))
        crashes = sum(1 for _, crashed, _ in matrix if crashed)
        assert crashes > 20
        for _, crashed, store in matrix:
            for shard in store.shards:
                shard.fs.crash_hook = None
                recover_and_check(shard.fs)


class TestCheckpointWriteKillMatrix:
    """Crash during snapshot write: loads fall back, never mount torn."""

    FILES_V2 = {"a.bin": b"A" * 100, "b.bin": b"B" * 50, "c.bin": b"C"}

    def _labels(self, tmp_path):
        labels = []
        CheckpointManager(tmp_path / "probe",
                          fault_hook=labels.append).save(self.FILES_V2)
        return labels

    def test_every_write_boundary(self, tmp_path):
        labels = self._labels(tmp_path)
        assert "manifest" in labels and "published" in labels
        for k, label in enumerate(labels):
            directory = tmp_path / f"m{k}"
            CheckpointManager(directory).save({"a.bin": b"old"},
                                              meta={"age": 1})

            calls = CrashClock(k)
            manager = CheckpointManager(directory, fault_hook=calls.hook)
            try:
                manager.save(self.FILES_V2, meta={"age": 2})
                crashed = False
            except CrashPoint:
                crashed = True
            assert crashed
            latest = CheckpointManager(directory).load_latest()
            assert latest is not None, "a valid checkpoint must survive"
            if label == "published":
                # Crash after the atomic rename: the new one is live.
                assert latest.meta == {"age": 2}
                assert latest.read("a.bin") == b"A" * 100
            else:
                # Crash before publish: the old one is untouched.
                assert latest.meta == {"age": 1}
                assert latest.read("a.bin") == b"old"

    def test_crashed_save_is_swept_by_the_next(self, tmp_path):
        calls = CrashClock(1)
        manager = CheckpointManager(tmp_path, fault_hook=calls.hook)
        with pytest.raises(CrashPoint):
            manager.save(self.FILES_V2, meta={"age": 1})
        clean = CheckpointManager(tmp_path)
        clean.save(self.FILES_V2, meta={"age": 2})
        assert clean.load_latest().meta == {"age": 2}
        leftovers = [p for p in tmp_path.iterdir()
                     if p.name.endswith(".tmp")]
        assert len(leftovers) <= 1  # at most the crashed husk


class TestDeltaChainKillMatrix:
    """Crash during a *delta* save at every chain write boundary.

    The chain already holds ``full -> delta`` when the kill lands; a
    crash before the atomic publish must leave the intact chain
    mountable (the delta head replays through its full base), and a
    crash after must mount the new link.  Either way the next clean
    save extends or restarts the chain correctly.
    """

    def payload(self, age: int) -> dict[str, bytes]:
        base = bytearray(b"\x5a" * 8192)
        base[age * 101: age * 101 + 8] = b"age=%04d" % age
        return {"state.bin": bytes(base), "small.bin": bytes([age]) * 16}

    def chained(self, directory, **kwargs):
        return CheckpointManager(directory, keep=3, full_interval=3,
                                 **kwargs)

    def _labels(self, tmp_path):
        """Fault labels of a delta save, probed on an unarmed chain."""
        labels = []
        probe = self.chained(tmp_path / "probe")
        probe.save(self.payload(1), meta={"age": 1})
        probe.save(self.payload(2), meta={"age": 2})
        probe.fault_hook = labels.append
        probe.save(self.payload(3), meta={"age": 3})
        return labels

    def test_every_chain_write_boundary(self, tmp_path):
        labels = self._labels(tmp_path)
        assert "manifest" in labels and "published" in labels
        assert any(label.startswith("write:") for label in labels)
        for k, label in enumerate(labels):
            directory = tmp_path / f"m{k}"
            setup = self.chained(directory)
            setup.save(self.payload(1), meta={"age": 1})
            second = setup.save(self.payload(2), meta={"age": 2})
            assert second.parent_seq == 1  # the kill lands on a chain

            calls = CrashClock(k)
            manager = self.chained(directory, fault_hook=calls.hook)
            with pytest.raises(CrashPoint):
                manager.save(self.payload(3), meta={"age": 3})
            latest = self.chained(directory).load_latest()
            assert latest is not None, "a valid chain must survive"
            if label == "published":
                assert latest.meta == {"age": 3}
                expect = 3
            else:
                # The surviving head is the delta at seq 2; mounting it
                # replays through the full snapshot at seq 1.
                assert latest.meta == {"age": 2}
                assert latest.parent_seq == 1
                expect = 2
            assert latest.read("state.bin") == \
                self.payload(expect)["state.bin"]
            # The volume keeps running: the next clean save publishes a
            # mountable checkpoint whatever the crash left behind.
            after = self.chained(directory)
            saved = after.save(self.payload(4), meta={"age": 4})
            assert after.load_latest().meta == {"age": 4}
            assert saved.read("state.bin") == self.payload(4)["state.bin"]

    def test_torn_chain_head_falls_back_to_full(self, tmp_path):
        """Scribbling the delta head (a torn write that still published)
        must fall back to the full base, never mount the damage."""
        manager = self.chained(tmp_path)
        manager.save(self.payload(1), meta={"age": 1})
        head = manager.save(self.payload(2), meta={"age": 2})
        (head.path / "state.bin").write_bytes(b"scribble")
        latest = self.chained(tmp_path).load_latest()
        assert latest is not None and latest.meta == {"age": 1}
        assert latest.read("state.bin") == self.payload(1)["state.bin"]
