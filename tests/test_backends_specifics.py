"""Backend-specific behaviour: costs, layout guarantees, GC/cleaning."""

import pytest

from repro.alloc.extent import coalesce
from repro.backends.blob_backend import BlobBackend
from repro.backends.costmodel import CostModel
from repro.backends.file_backend import FileBackend
from repro.backends.gfs_backend import GfsChunkBackend
from repro.backends.lfs_backend import LfsBackend
from repro.disk.device import BlockDevice
from repro.disk.geometry import scaled_disk
from repro.errors import ConfigError
from repro.units import KB, MB, PAGE_SIZE


class TestCostModel:
    def test_db_stream_scales_with_bytes(self):
        cost = CostModel()
        from repro.disk.iostats import IoStats

        stats = IoStats()
        cost.charge_db_stream(stats, 1 * MB)
        one_mb = stats.cpu_time_s
        cost.charge_db_stream(stats, 9 * MB)
        assert stats.cpu_time_s == pytest.approx(one_mb * 10, rel=0.01)

    def test_file_open_dearer_than_db_query(self):
        cost = CostModel()
        assert cost.file_open_cpu_s > cost.db_query_cpu_s

    def test_db_per_byte_dearer_than_file(self):
        cost = CostModel()
        assert cost.db_per_byte_cpu_s > cost.file_per_byte_cpu_s

    def test_describe_mentions_every_knob(self):
        text = CostModel().describe()
        for word in ("db query", "file open", "db stream", "file stream"):
            assert word in text


class TestFileBackendSpecifics:
    def test_get_charges_mft_read_and_open_cpu(self):
        device = BlockDevice(scaled_disk(64 * MB))
        store = FileBackend(device)
        store.put("a", size=256 * KB)
        reads_before = device.stats.read_bytes
        cpu_before = device.stats.cpu_time_s
        store.get("a")
        assert device.stats.read_bytes - reads_before > 256 * KB
        assert device.stats.cpu_time_s > cpu_before

    def test_overwrite_is_safe_write(self):
        device = BlockDevice(scaled_disk(64 * MB))
        store = FileBackend(device)
        store.put("a", size=256 * KB)
        store.overwrite("a", size=256 * KB)
        # Exactly one file remains per object — no temp leftovers.
        assert store.fs.list_files() == ["obj-a"]

    def test_size_hints_keep_objects_contiguous(self):
        device = BlockDevice(scaled_disk(64 * MB))
        store = FileBackend(device, size_hints=True)
        store.put("a", size=1 * MB)
        for _ in range(5):
            store.overwrite("a", size=1 * MB)
        assert len(coalesce(store.object_extents("a"))) == 1

    def test_metadata_lives_in_separate_db(self):
        device = BlockDevice(scaled_disk(64 * MB))
        store = FileBackend(device)
        store.put("a", size=64 * KB)
        assert store.meta_db.data_device is not device
        assert len(store.devices()) == 3


class TestBlobBackendSpecifics:
    def test_single_data_and_log_device(self):
        device = BlockDevice(scaled_disk(64 * MB))
        store = BlobBackend(device)
        assert len(store.devices()) == 2

    def test_blob_pages_page_granular(self):
        device = BlockDevice(scaled_disk(64 * MB))
        store = BlobBackend(device)
        store.put("a", size=100 * KB)
        extents = store.object_extents("a")
        for ext in extents:
            assert ext.start % PAGE_SIZE == 0
            assert ext.length % PAGE_SIZE == 0


class TestGfsSpecifics:
    def make(self):
        device = BlockDevice(scaled_disk(64 * MB))
        return GfsChunkBackend(device, chunk_size=8 * MB)

    def test_objects_always_contiguous(self):
        store = self.make()
        for i in range(10):
            store.put(f"k{i}", size=1 * MB)
        for i in range(3):
            store.overwrite(f"k{i}", size=1 * MB)
        for i in range(10):
            assert len(store.object_extents(f"k{i}")) == 1

    def test_record_size_cap(self):
        store = self.make()
        with pytest.raises(ConfigError):
            store.put("big", size=3 * MB)  # > chunk/4

    def test_records_never_span_chunks(self):
        store = self.make()
        for i in range(12):  # forces chunk rollover with padding
            store.put(f"k{i}", size=1900 * KB)
        for i in range(12):
            [ext] = store.object_extents(f"k{i}")
            chunk_of = lambda off: off // (8 * MB)
            assert chunk_of(ext.start) == chunk_of(ext.end - 1)

    def test_padding_accounted(self):
        store = self.make()
        for i in range(12):
            store.put(f"k{i}", size=1900 * KB)
        # 8 MB holds four 1900 KB records; the fifth rolls the chunk,
        # zero-padding the remainder.
        assert store.padding_bytes > 0

    def test_gc_reclaims_dead_chunks(self):
        store = self.make()
        for i in range(12):
            store.put(f"k{i}", size=1 * MB)
        for i in range(12):
            store.delete(f"k{i}")
        for i in range(40):
            store.put(f"n{i}", size=1 * MB)
        assert store.gc_runs > 0
        assert store.store_stats().live_bytes == 40 * MB

    def test_internal_fragmentation_metric(self):
        store = self.make()
        store.put("a", size=1 * MB)
        store.delete("a")
        assert store.internal_fragmentation() > 0


class TestLfsSpecifics:
    def make(self, capacity=32 * MB):
        device = BlockDevice(scaled_disk(capacity))
        return LfsBackend(device, segment_size=2 * MB)

    def test_overwrites_go_to_log_head(self):
        store = self.make()
        store.put("a", size=512 * KB)
        first = store.object_extents("a")[0].start
        store.overwrite("a", size=512 * KB)
        second = store.object_extents("a")[0].start
        assert second != first  # new copy, old space reclaimed by cleaner

    def test_objects_mostly_contiguous(self):
        store = self.make()
        for i in range(8):
            store.put(f"k{i}", size=512 * KB)
        frag_counts = [len(store.object_extents(f"k{i}")) for i in range(8)]
        assert max(frag_counts) <= 2  # at most one segment boundary

    def test_cleaner_reclaims_under_churn(self):
        import random

        rng = random.Random(4)
        store = self.make(capacity=16 * MB)
        keys = [f"k{i}" for i in range(12)]
        for key in keys:
            store.put(key, size=1 * MB)
        for _ in range(120):
            store.overwrite(rng.choice(keys), size=1 * MB)
        assert store.cleaner_runs > 0
        assert store.write_amplification() > 0
        stats = store.store_stats()
        assert stats.live_bytes == 12 * MB

    def test_content_survives_cleaning(self):
        import random

        rng = random.Random(4)
        device = BlockDevice(scaled_disk(16 * MB), store_data=True)
        store = LfsBackend(device, segment_size=1 * MB)
        keys = [f"k{i}" for i in range(16)]
        payloads = {}
        for i, key in enumerate(keys):
            payloads[key] = bytes([i + 1]) * (768 * KB)
            store.put(key, data=payloads[key])
        for _ in range(80):
            key = rng.choice(keys)
            payloads[key] = bytes([rng.randint(1, 255)]) * (768 * KB)
            store.overwrite(key, data=payloads[key])
        assert store.cleaner_runs > 0
        for key in keys:
            assert store.get(key) == payloads[key]
