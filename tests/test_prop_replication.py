"""Property-based replication invariants on the ShardedStore.

For ANY schedule of put/overwrite/delete operations on a replicated
store:

* no shard ever holds more than one copy of a key;
* after losing any single shard, every surviving object reads back
  byte-identical to the model;
* rebuild conserves logical content (keys, order, bytes) while its
  accounting matches what was physically copied; and
* a second rebuild pass is a no-op.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backends.lfs_backend import LfsBackend
from repro.backends.sharded import ShardedStore
from repro.disk.device import BlockDevice
from repro.disk.geometry import scaled_disk
from repro.units import KB, MB


@st.composite
def store_scripts(draw):
    """A schedule of mutations over a small key space."""
    return draw(st.lists(
        st.tuples(
            st.sampled_from(["put", "overwrite", "delete"]),
            st.integers(min_value=0, max_value=7),        # key index
            st.integers(min_value=1, max_value=16),       # size in 4 KB
        ),
        max_size=30,
    ))


def make_store(n=4, replicas=2):
    shards = [
        LfsBackend(BlockDevice(scaled_disk(24 * MB), store_data=True),
                   segment_size=2 * MB)
        for _ in range(n)
    ]
    return ShardedStore(shards, placement="hash", replicas=replicas)


def run_script(store, script):
    model: dict[str, bytes] = {}
    for op, key_idx, size_units in script:
        key = f"k{key_idx}"
        size = size_units * 4 * KB
        payload = bytes([(key_idx * 37 + size_units) % 255 + 1]) * size
        if op == "put" and key not in model:
            store.put(key, data=payload)
            model[key] = payload
        elif op == "overwrite" and key in model:
            store.overwrite(key, data=payload)
            model[key] = payload
        elif op == "delete" and key in model:
            store.delete(key)
            del model[key]
    return model


def assert_at_most_one_copy_per_shard(store):
    # Stale copies on dead shards died with their devices and are not
    # counted; live shards must hold exactly the routed copy set.
    dead = set(store.dead_shards)
    for key in store.keys():
        holders = store.holders_of(key)
        assert len(set(holders)) == len(holders)
        assert not dead.intersection(holders)
        physical = [i for i, shard in enumerate(store.shards)
                    if i not in dead and shard.exists(key)]
        assert sorted(physical) == sorted(holders)


@settings(max_examples=40, deadline=None)
@given(store_scripts(), st.integers(min_value=2, max_value=3))
def test_at_most_one_copy_per_shard(script, replicas):
    store = make_store(replicas=replicas)
    run_script(store, script)
    assert_at_most_one_copy_per_shard(store)


@settings(max_examples=30, deadline=None)
@given(store_scripts(), st.integers(min_value=0, max_value=3))
def test_single_shard_loss_preserves_every_object(script, victim):
    store = make_store(replicas=2)
    model = run_script(store, script)
    store.fail_shard(victim)
    for key, payload in model.items():
        assert store.get(key) == payload
    swept = store.read_many(sorted(model))
    assert swept == [model[k] for k in sorted(model)]


@settings(max_examples=30, deadline=None)
@given(store_scripts(), st.integers(min_value=0, max_value=3))
def test_rebuild_conserves_content_and_accounting(script, victim):
    store = make_store(replicas=2)
    model = run_script(store, script)
    store.fail_shard(victim)
    keys_before = store.keys()
    hurt = store.under_replicated()
    write_bytes_before = sum(d.stats.write_bytes for d in store.devices())

    report = store.rebuild()

    # Logical content, key order, and sizes are untouched.
    assert store.keys() == keys_before
    for key, payload in model.items():
        assert store.get(key) == payload
        assert store.meta(key).size == len(payload)
    # Accounting: every under-replicated key was rebuilt, its bytes
    # counted once, and the devices physically wrote at least that much
    # (segment padding and metadata may add more).
    assert report.rebuilt_objects == len(hurt)
    assert report.rebuilt_bytes == sum(len(model[k]) for k in hurt)
    written = sum(d.stats.write_bytes for d in store.devices()) \
        - write_bytes_before
    assert written >= report.rebuilt_bytes
    assert store.under_replicated() == []
    assert_at_most_one_copy_per_shard(store)


@settings(max_examples=30, deadline=None)
@given(store_scripts(), st.integers(min_value=0, max_value=3))
def test_rebuild_is_idempotent(script, victim):
    store = make_store(replicas=2)
    run_script(store, script)
    store.fail_shard(victim)
    store.rebuild()
    routing = {key: store.holders_of(key) for key in store.keys()}
    again = store.rebuild()
    assert again.rebuilt_objects == 0
    assert again.rebuilt_bytes == 0
    assert {key: store.holders_of(key) for key in store.keys()} == routing
