"""Tests for the Exodus-style LOB B-tree."""

import itertools

import pytest

from repro.db.btree import LobTree
from repro.errors import ConfigError


def make_tree(fanout=4):
    """Small fanout so splits happen early; tracked node pages."""
    counter = itertools.count(1000)
    freed: list[int] = []
    tree = LobTree(
        fanout=fanout,
        alloc_node_page=lambda: next(counter),
        free_node_page=freed.append,
    )
    return tree, freed


class TestAppend:
    def test_empty(self):
        tree, _ = make_tree()
        assert tree.total_pages == 0
        assert tree.all_runs() == []

    def test_single_run(self):
        tree, _ = make_tree()
        tree.append_run(10, 5)
        assert tree.total_pages == 5
        assert tree.all_runs() == [(10, 5)]

    def test_consecutive_appends_merge(self):
        tree, _ = make_tree()
        tree.append_run(10, 5)
        tree.append_run(15, 3)
        assert tree.all_runs() == [(10, 8)]

    def test_discontiguous_appends_stay_separate(self):
        tree, _ = make_tree()
        tree.append_run(10, 5)
        tree.append_run(100, 3)
        assert tree.all_runs() == [(10, 5), (100, 3)]

    def test_many_appends_split_nodes(self):
        tree, _ = make_tree(fanout=4)
        for i in range(50):
            tree.append_run(i * 10, 1)  # never merge (gaps)
        assert tree.total_pages == 50
        assert tree.depth() >= 2
        tree.check_invariants()
        assert tree.all_runs() == [(i * 10, 1) for i in range(50)]


class TestLookup:
    def test_page_at(self):
        tree, _ = make_tree()
        tree.append_run(100, 10)
        tree.append_run(500, 10)
        assert tree.page_at(0) == 100
        assert tree.page_at(9) == 109
        assert tree.page_at(10) == 500
        assert tree.page_at(19) == 509

    def test_page_at_bounds(self):
        tree, _ = make_tree()
        tree.append_run(0, 5)
        with pytest.raises(ConfigError):
            tree.page_at(5)
        with pytest.raises(ConfigError):
            tree.page_at(-1)

    def test_runs_in_range(self):
        tree, _ = make_tree()
        tree.append_run(100, 10)
        tree.append_run(500, 10)
        assert tree.runs_in_range(5, 10) == [(105, 5), (500, 5)]
        assert tree.runs_in_range(0, 20) == [(100, 10), (500, 10)]
        assert tree.runs_in_range(3, 0) == []

    def test_runs_in_range_bounds(self):
        tree, _ = make_tree()
        tree.append_run(0, 5)
        with pytest.raises(ConfigError):
            tree.runs_in_range(0, 6)

    def test_page_at_deep_tree(self):
        tree, _ = make_tree(fanout=4)
        for i in range(100):
            tree.append_run(i * 10, 2)
        for i in range(100):
            assert tree.page_at(i * 2) == i * 10
            assert tree.page_at(i * 2 + 1) == i * 10 + 1


class TestInsert:
    def test_insert_at_front(self):
        tree, _ = make_tree()
        tree.append_run(100, 5)
        tree.insert_run(0, 500, 2)
        assert tree.all_runs() == [(500, 2), (100, 5)]
        assert tree.page_at(0) == 500

    def test_insert_mid_run_splits(self):
        tree, _ = make_tree()
        tree.append_run(100, 10)
        tree.insert_run(4, 900, 2)
        assert tree.all_runs() == [(100, 4), (900, 2), (104, 6)]
        assert tree.total_pages == 12

    def test_exodus_property_no_data_movement(self):
        # Inserting mid-object shifts logical positions without moving
        # any physical page — the Section 2 contrast with filesystems.
        tree, _ = make_tree()
        tree.append_run(100, 10)
        before = set()
        for run_start, count in tree.all_runs():
            before.update(range(run_start, run_start + count))
        tree.insert_run(5, 900, 1)
        after = set()
        for run_start, count in tree.all_runs():
            after.update(range(run_start, run_start + count))
        assert before <= after

    def test_insert_merges_when_physically_adjacent(self):
        tree, _ = make_tree()
        tree.append_run(100, 4)
        tree.append_run(200, 4)
        tree.insert_run(4, 104, 2)  # physically continues the first run
        assert tree.all_runs() == [(100, 6), (200, 4)]

    def test_insert_position_validation(self):
        tree, _ = make_tree()
        tree.append_run(0, 5)
        with pytest.raises(ConfigError):
            tree.insert_run(6, 100, 1)
        with pytest.raises(ConfigError):
            tree.insert_run(0, 100, 0)


class TestDelete:
    def test_delete_range_returns_physical_runs(self):
        tree, _ = make_tree()
        tree.append_run(100, 10)
        removed = tree.delete_range(2, 4)
        assert removed == [(102, 4)]
        assert tree.all_runs() == [(100, 2), (106, 4)]
        assert tree.total_pages == 6

    def test_delete_across_runs(self):
        tree, _ = make_tree()
        tree.append_run(100, 5)
        tree.append_run(300, 5)
        removed = tree.delete_range(3, 4)
        assert removed == [(103, 2), (300, 2)]
        assert tree.all_runs() == [(100, 3), (302, 3)]

    def test_delete_everything(self):
        tree, _ = make_tree()
        tree.append_run(100, 5)
        assert tree.delete_range(0, 5) == [(100, 5)]
        assert tree.total_pages == 0

    def test_clear_keeps_tree_usable(self):
        tree, _ = make_tree()
        tree.append_run(100, 5)
        assert tree.clear() == [(100, 5)]
        tree.append_run(200, 3)
        assert tree.all_runs() == [(200, 3)]

    def test_destroy_frees_all_node_pages(self):
        tree, freed = make_tree(fanout=4)
        for i in range(30):
            tree.append_run(i * 10, 1)
        allocated = set(tree.node_pages())
        tree.destroy()
        assert allocated <= set(freed)

    def test_destroy_leaks_nothing_on_empty_tree(self):
        tree, freed = make_tree()
        root_pages = set(tree.node_pages())
        tree.destroy()
        assert root_pages <= set(freed)


class TestNodePages:
    def test_node_pages_grow_with_tree(self):
        tree, _ = make_tree(fanout=4)
        assert len(tree.node_pages()) == 1  # just the root leaf
        for i in range(20):
            tree.append_run(i * 10, 1)
        assert len(tree.node_pages()) > 1

    def test_in_memory_mode(self):
        tree = LobTree(fanout=8)
        tree.append_run(0, 4)
        assert tree.node_pages() == [-1]

    def test_fanout_validation(self):
        with pytest.raises(ConfigError):
            LobTree(fanout=2)


class TestStress:
    def test_random_insert_delete_against_reference(self):
        """The tree must agree with a plain list model through an
        arbitrary operation sequence."""
        import random

        rng = random.Random(9)
        tree, _ = make_tree(fanout=4)
        model: list[int] = []
        next_page = 0
        for _ in range(300):
            op = rng.random()
            if op < 0.55 or not model:
                count = rng.randint(1, 6)
                pos = rng.randint(0, len(model))
                tree.insert_run(pos, next_page, count)
                model[pos:pos] = range(next_page, next_page + count)
                next_page += count + 3  # gap prevents accidental merges
            else:
                start = rng.randint(0, len(model) - 1)
                count = rng.randint(1, min(5, len(model) - start))
                removed = tree.delete_range(start, count)
                flat = [
                    page
                    for run_start, run_count in removed
                    for page in range(run_start, run_start + run_count)
                ]
                assert flat == model[start:start + count]
                del model[start:start + count]
            tree.check_invariants()
            assert tree.total_pages == len(model)
        reconstructed = [
            page
            for run_start, run_count in tree.all_runs()
            for page in range(run_start, run_start + run_count)
        ]
        assert reconstructed == model
