"""Tests for the simulated filesystem's core semantics."""

import pytest

from repro.alloc.extent import coalesce
from repro.disk.device import BlockDevice
from repro.disk.geometry import scaled_disk
from repro.errors import (
    ConfigError,
    FileExistsFsError,
    FileNotFoundFsError,
    FsError,
)
from repro.fs.filesystem import FsConfig, SimFilesystem
from repro.units import CLUSTER_SIZE, KB, MB


class TestNamespace:
    def test_create_and_exists(self, quiet_fs):
        quiet_fs.create("a")
        assert quiet_fs.exists("a")
        assert quiet_fs.file_size("a") == 0

    def test_duplicate_create(self, quiet_fs):
        quiet_fs.create("a")
        with pytest.raises(FileExistsFsError):
            quiet_fs.create("a")

    def test_delete(self, quiet_fs):
        quiet_fs.create("a")
        quiet_fs.delete("a")
        assert not quiet_fs.exists("a")
        with pytest.raises(FileNotFoundFsError):
            quiet_fs.read("a")

    def test_rename_plain(self, quiet_fs):
        quiet_fs.create("a")
        quiet_fs.append("a", nbytes=1000)
        quiet_fs.rename("a", "b")
        assert not quiet_fs.exists("a")
        assert quiet_fs.file_size("b") == 1000

    def test_rename_replaces_and_frees_old(self, quiet_fs):
        quiet_fs.create("victim")
        quiet_fs.append("victim", nbytes=64 * KB)
        quiet_fs.create("new")
        quiet_fs.append("new", nbytes=32 * KB)
        free_before = quiet_fs.free_bytes
        quiet_fs.rename("new", "victim")
        quiet_fs.journal.commit()
        assert quiet_fs.free_bytes == free_before + 64 * KB
        assert quiet_fs.file_size("victim") == 32 * KB


class TestAppendRead:
    def test_append_grows_size(self, quiet_fs):
        quiet_fs.create("a")
        quiet_fs.append("a", nbytes=100)
        quiet_fs.append("a", nbytes=100)
        assert quiet_fs.file_size("a") == 200

    def test_append_rounds_to_clusters(self, quiet_fs):
        quiet_fs.create("a")
        quiet_fs.append("a", nbytes=100)
        record = quiet_fs.table.lookup("a")
        assert record.allocated_bytes == CLUSTER_SIZE

    def test_cluster_slack_reused(self, quiet_fs):
        quiet_fs.create("a")
        quiet_fs.append("a", nbytes=100)
        quiet_fs.append("a", nbytes=100)
        record = quiet_fs.table.lookup("a")
        assert record.allocated_bytes == CLUSTER_SIZE  # no new cluster

    def test_sequential_appends_contiguous_on_clean_volume(self, quiet_fs):
        quiet_fs.create("a")
        for _ in range(16):
            quiet_fs.append("a", nbytes=64 * KB)
        assert len(coalesce(quiet_fs.extent_map("a"))) == 1

    def test_bulk_load_files_contiguous(self, quiet_fs):
        # Clean-volume bulk load: every file lands in one extent
        # (the paper's fast age-0 reads depend on this).
        for i in range(10):
            name = f"f{i}"
            quiet_fs.create(name)
            for _ in range(4):
                quiet_fs.append(name, nbytes=64 * KB)
        for i in range(10):
            assert len(coalesce(quiet_fs.extent_map(f"f{i}"))) == 1

    def test_read_range_validation(self, quiet_fs):
        quiet_fs.create("a")
        quiet_fs.append("a", nbytes=1000)
        with pytest.raises(FsError):
            quiet_fs.read("a", offset=500, length=600)
        with pytest.raises(FsError):
            quiet_fs.read("a", offset=-1, length=10)

    def test_read_charges_io(self, quiet_fs):
        quiet_fs.create("a")
        quiet_fs.append("a", nbytes=1 * MB)
        before = quiet_fs.device.stats.read_bytes
        quiet_fs.read("a")
        assert quiet_fs.device.stats.read_bytes - before == 1 * MB

    def test_append_requires_exactly_one_form(self, quiet_fs):
        quiet_fs.create("a")
        with pytest.raises(ConfigError):
            quiet_fs.append("a")
        with pytest.raises(ConfigError):
            quiet_fs.append("a", nbytes=10, data=b"xx")


class TestContent:
    def test_round_trip(self, content_fs):
        content_fs.create("a")
        payload = bytes(range(256)) * 16
        content_fs.append("a", data=payload)
        assert content_fs.read("a") == payload

    def test_multi_append_round_trip(self, content_fs):
        content_fs.create("a")
        content_fs.append("a", data=b"hello ")
        content_fs.append("a", data=b"world")
        assert content_fs.read("a") == b"hello world"

    def test_range_read(self, content_fs):
        content_fs.create("a")
        content_fs.append("a", data=b"0123456789")
        assert content_fs.read("a", offset=3, length=4) == b"3456"

    def test_content_survives_rename(self, content_fs):
        content_fs.create("a")
        content_fs.append("a", data=b"payload")
        content_fs.rename("a", "b")
        assert content_fs.read("b") == b"payload"


class TestSpaceAccounting:
    def test_occupancy_rises_with_data(self, quiet_fs):
        occ0 = quiet_fs.occupancy()
        quiet_fs.create("a")
        quiet_fs.append("a", nbytes=4 * MB)
        assert quiet_fs.occupancy() > occ0

    def test_delete_returns_space_after_commit(self, quiet_fs):
        quiet_fs.create("a")
        quiet_fs.append("a", nbytes=1 * MB)
        free_after_write = quiet_fs.free_bytes
        quiet_fs.delete("a")
        quiet_fs.journal.commit()
        assert quiet_fs.free_bytes == free_after_write + 1 * MB

    def test_truncate_slack_releases_tail(self, quiet_fs):
        quiet_fs.create("a")
        quiet_fs.preallocate("a", 1 * MB)
        quiet_fs.append("a", nbytes=100 * KB)
        quiet_fs.truncate_slack("a")
        quiet_fs.journal.commit()
        record = quiet_fs.table.lookup("a")
        assert record.allocated_bytes == 100 * KB
        record.check_invariants()

    def test_check_invariants(self, quiet_fs):
        for i in range(5):
            quiet_fs.create(f"f{i}")
            quiet_fs.append(f"f{i}", nbytes=100 * KB)
        quiet_fs.delete("f2")
        quiet_fs.check_invariants()


class TestPreallocate:
    def test_preallocate_then_append_uses_reservation(self, quiet_fs):
        quiet_fs.create("a")
        quiet_fs.preallocate("a", 1 * MB)
        free_after_prealloc = quiet_fs.free_bytes
        for _ in range(16):
            quiet_fs.append("a", nbytes=64 * KB)
        assert quiet_fs.free_bytes == free_after_prealloc
        assert len(coalesce(quiet_fs.extent_map("a"))) == 1

    def test_preallocate_requires_empty_file(self, quiet_fs):
        quiet_fs.create("a")
        quiet_fs.append("a", nbytes=10)
        with pytest.raises(FsError):
            quiet_fs.preallocate("a", 1 * MB)

    def test_preallocate_validation(self, quiet_fs):
        quiet_fs.create("a")
        with pytest.raises(ConfigError):
            quiet_fs.preallocate("a", 0)


class TestMetadataCharges:
    def test_create_writes_mft_record(self):
        device = BlockDevice(scaled_disk(64 * MB))
        fs = SimFilesystem(device, FsConfig(metadata_interval_events=0))
        before = device.stats.write_bytes
        fs.create("a")
        assert device.stats.write_bytes > before

    def test_read_record_charges_read(self):
        device = BlockDevice(scaled_disk(64 * MB))
        fs = SimFilesystem(device, FsConfig(metadata_interval_events=0))
        fs.create("a")
        before = device.stats.read_bytes
        fs.read_record("a")
        assert device.stats.read_bytes > before

    def test_quiet_config_charges_nothing(self, quiet_fs):
        quiet_fs.create("a")
        quiet_fs.read_record("a")
        assert quiet_fs.device.stats.total_bytes == 0

    def test_volume_too_small_rejected(self):
        with pytest.raises(ConfigError):
            SimFilesystem(BlockDevice(scaled_disk(4 * MB)))
