"""Batch submission path and segment-store parity tests.

Two contracts from the scatter/gather port:

* The blocked :class:`_SegmentStore` is byte-identical to the seed's
  flat-list implementation (kept as :class:`_FlatSegmentStore`) under
  any write/trim/read sequence.
* ``BlockDevice.submit`` records exactly one ``IoStats`` entry per
  batch and, with reordering off, charges exactly what per-request
  submission charges.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.alloc.extent import Extent
from repro.disk.device import (
    BlockDevice, IoRequest, _FlatSegmentStore, _SegmentStore,
)
from repro.disk.geometry import scaled_disk
from repro.errors import ConfigError
from repro.units import KB, MB


# ----------------------------------------------------------------------
# Segment-store parity
# ----------------------------------------------------------------------
SPACE = 512  # keep offsets small so overlaps are frequent


@st.composite
def store_operations(draw):
    return draw(st.lists(
        st.one_of(
            st.tuples(st.just("write"),
                      st.integers(min_value=0, max_value=SPACE),
                      st.binary(min_size=1, max_size=40)),
            st.tuples(st.just("trim"),
                      st.integers(min_value=0, max_value=SPACE),
                      st.integers(min_value=0, max_value=60)),
            st.tuples(st.just("read"),
                      st.integers(min_value=0, max_value=SPACE),
                      st.integers(min_value=0, max_value=60)),
        ),
        max_size=60,
    ))


@given(store_operations())
@settings(max_examples=200, deadline=None)
def test_segment_store_parity_with_flat_model(ops):
    """Blocked and flat stores are byte-identical under any sequence."""
    blocked = _SegmentStore()
    flat = _FlatSegmentStore()
    for op, offset, arg in ops:
        if op == "write":
            blocked.write(offset, arg)
            flat.write(offset, arg)
        elif op == "trim":
            blocked.trim(offset, arg)
            flat.trim(offset, arg)
        else:
            assert blocked.read(offset, arg) == flat.read(offset, arg)
        assert len(blocked) == len(flat)
    full = SPACE + 128
    assert blocked.read(0, full) == flat.read(0, full)
    blocked._index.check("segment store")


def test_segment_store_many_segments_stay_consistent():
    """Enough disjoint segments to force directory splits."""
    store = _SegmentStore()
    for i in range(3000):
        store.write(i * 8, bytes([i % 251]) * 4)
    assert len(store) == 3000
    store._index.check("segment store")
    assert store.read(16, 4) == bytes([2]) * 4
    # One giant overwrite swallows everything.
    store.write(0, b"\xff" * 3000 * 8)
    assert len(store) == 1
    assert store.read(123, 1) == b"\xff"


def test_trim_reads_back_zeros():
    store = _SegmentStore()
    store.write(10, b"A" * 20)
    store.trim(15, 5)
    assert store.read(10, 20) == b"A" * 5 + b"\x00" * 5 + b"A" * 10
    # Trim splitting one segment into two pieces.
    assert len(store) == 2


def test_device_discard():
    dev = BlockDevice(scaled_disk(4 * MB), store_data=True)
    dev.write(0, 16, b"A" * 16)
    busy = dev.stats.busy_time_s
    dev.discard(4, 8)
    assert dev.stats.busy_time_s == busy  # untimed, like peek/poke
    assert dev.peek(0, 16) == b"A" * 4 + b"\x00" * 8 + b"A" * 4


def test_discard_requires_content_mode():
    dev = BlockDevice(scaled_disk(4 * MB))
    with pytest.raises(ConfigError):
        dev.discard(0, 4)


# ----------------------------------------------------------------------
# Batch submission accounting
# ----------------------------------------------------------------------
def scattered_requests():
    return [
        IoRequest(True, [Extent(i * 3 * MB, 64 * KB)])
        for i in range(8)
    ]


class TestBatchAccounting:
    def test_one_stats_record_per_batch(self):
        dev = BlockDevice(scaled_disk(64 * MB))
        dev.submit(scattered_requests())
        assert dev.stats.requests == 1

    def test_batch_cost_identical_to_per_request(self):
        batched = BlockDevice(scaled_disk(64 * MB))
        serial = BlockDevice(scaled_disk(64 * MB))
        batched.submit(scattered_requests())
        for req in scattered_requests():
            serial.submit([req])
        assert batched.stats.write_bytes == serial.stats.write_bytes
        assert batched.stats.write_time_s == pytest.approx(
            serial.stats.write_time_s
        )
        assert batched.stats.seeks == serial.stats.seeks
        assert batched.clock_s == pytest.approx(serial.clock_s)
        assert batched.head_position == serial.head_position
        assert batched.stats.requests == 1
        assert serial.stats.requests == 8

    def test_mixed_batch_splits_read_and_write_accounting(self):
        dev = BlockDevice(scaled_disk(64 * MB))
        dev.submit([
            IoRequest(False, [Extent(0, 1 * MB)]),
            IoRequest(True, [Extent(32 * MB, 2 * MB)]),
        ])
        assert dev.stats.read_bytes == 1 * MB
        assert dev.stats.write_bytes == 2 * MB
        assert dev.stats.read_time_s > 0
        assert dev.stats.write_time_s > 0
        assert dev.stats.requests == 1

    def test_batch_lands_once_in_open_windows(self):
        dev = BlockDevice(scaled_disk(64 * MB))
        win = dev.stats.start_window("batch")
        dev.submit(scattered_requests())
        dev.stats.end_window(win)
        assert win.requests == 1
        assert win.write_bytes == 8 * 64 * KB

    def test_empty_batch_is_a_noop(self):
        dev = BlockDevice(scaled_disk(64 * MB))
        assert dev.submit([]) == []
        assert dev.stats.requests == 0
        assert dev.clock_s == 0.0

    def test_batch_validates_every_request(self):
        dev = BlockDevice(scaled_disk(64 * MB))
        with pytest.raises(ConfigError):
            dev.submit([
                IoRequest(True, [Extent(0, 64 * KB)]),
                IoRequest(True, [Extent(64 * MB, 64 * KB)]),  # off the end
            ])
        assert dev.stats.requests == 0  # rejected before any accounting

    def test_read_results_in_submission_order(self):
        dev = BlockDevice(scaled_disk(4 * MB), store_data=True)
        dev.poke(0, b"aaaa")
        dev.poke(100, b"bbbb")
        results = dev.submit([
            IoRequest.read([Extent(100, 4)]),
            IoRequest.read([Extent(0, 4)]),
        ], reorder=True)
        assert results == [b"bbbb", b"aaaa"]


class TestElevator:
    def test_reorder_reduces_seek_cost(self):
        """Descending submissions served ascending cost fewer seeks."""
        requests = [
            IoRequest(False, [Extent((7 - i) * 8 * MB, 64 * KB)])
            for i in range(8)
        ]
        ordered = BlockDevice(scaled_disk(64 * MB))
        ordered.submit(list(requests), reorder=True)
        unordered = BlockDevice(scaled_disk(64 * MB))
        unordered.submit(list(requests), reorder=False)
        assert ordered.stats.read_time_s < unordered.stats.read_time_s
        assert ordered.stats.read_bytes == unordered.stats.read_bytes

    def test_reorder_wraps_around_head(self):
        """C-LOOK: requests behind the head go last, still ascending."""
        dev = BlockDevice(scaled_disk(64 * MB))
        dev.read(32 * MB, 64 * KB)  # park the head mid-volume
        behind = Extent(1 * MB, 64 * KB)
        ahead = Extent(48 * MB, 64 * KB)
        dev.submit([IoRequest.read([behind]), IoRequest.read([ahead])],
                   reorder=True)
        # Served ahead-first, so the head finishes past the wrapped one.
        assert dev.head_position == behind.end

    def test_reorder_never_changes_stored_bytes(self):
        """Overlapping writes resolve in submission order regardless."""
        plain = BlockDevice(scaled_disk(4 * MB), store_data=True)
        shuffled = BlockDevice(scaled_disk(4 * MB), store_data=True)
        batch = [
            IoRequest.write([Extent(2 * MB, 8)], b"X" * 8),
            IoRequest.write([Extent(2 * MB + 4, 8)], b"Y" * 8),
            IoRequest.write([Extent(0, 4)], b"Z" * 4),
        ]
        plain.submit([IoRequest(r.is_write, r.extents, r.data)
                      for r in batch], reorder=False)
        shuffled.submit([IoRequest(r.is_write, r.extents, r.data)
                         for r in batch], reorder=True)
        assert plain.peek(2 * MB, 12) == b"X" * 4 + b"Y" * 8
        assert shuffled.peek(2 * MB, 12) == plain.peek(2 * MB, 12)
        assert shuffled.peek(0, 4) == b"Z" * 4
