"""Tests for the persistence layer: snapshots, rebuilds, checkpoints.

Covers the byte-stable binary formats (round trip, determinism,
torn-blob rejection), the rebuild-from-extent-maps path and its
cross-check, and the CheckpointManager's atomic-publish/fallback
behaviour.  Crash-driven coverage lives in ``test_crash_matrix.py``.
"""

import random

import pytest

from repro.alloc.extent import Extent
from repro.alloc.freelist import INDEX_KINDS, make_free_index
from repro.disk.device import BlockDevice
from repro.disk.geometry import scaled_disk
from repro.errors import ConfigError, SnapshotError
from repro.fs.filesystem import FsConfig, SimFilesystem
from repro.fs.journal import Journal
from repro.persist import (
    CheckpointManager,
    cross_check,
    decode_free_index,
    decode_journal_state,
    encode_free_index,
    encode_journal,
    fs_components,
    rebuild_fs_free_index,
    restore_journal,
    verify_journal,
)
from repro.persist.snapshot import index_kind_of
from repro.units import KB, MB

CAPACITY = 64 * MB


def churned_index(kind: str, seed: int = 3):
    """A free index with a few dozen runs from random carves/frees."""
    index = make_free_index(CAPACITY, kind=kind)
    rng = random.Random(seed)
    allocated = []
    for _ in range(300):
        if allocated and rng.random() < 0.4:
            index.add(allocated.pop(rng.randrange(len(allocated))))
        else:
            run = index.first_fit(rng.randrange(1, 64) * KB,
                                  min_start=rng.randrange(CAPACITY))
            if run is None:
                continue
            taken, _ = run.take_front(min(run.length, 32 * KB))
            index.remove(taken)
            allocated.append(taken)
    index.check_invariants()
    return index


class TestFreeIndexSnapshot:
    @pytest.mark.parametrize("kind", INDEX_KINDS)
    def test_round_trip(self, kind):
        index = churned_index(kind)
        blob = encode_free_index(index)
        restored = decode_free_index(blob)
        assert index_kind_of(restored) == kind
        assert list(restored) == list(index)
        assert restored.total_free == index.total_free
        assert restored.largest() == index.largest()

    @pytest.mark.parametrize("kind", INDEX_KINDS)
    def test_byte_stable(self, kind):
        """Same free map -> same bytes; decode/encode is the identity."""
        index = churned_index(kind)
        blob = encode_free_index(index)
        assert encode_free_index(decode_free_index(blob)) == blob

    def test_cross_engine_restore(self):
        tiered = churned_index("tiered")
        naive = decode_free_index(encode_free_index(tiered), kind="naive")
        assert index_kind_of(naive) == "naive"
        cross_check(tiered, naive)

    def test_empty_index(self):
        index = make_free_index(CAPACITY, initially_free=False)
        restored = decode_free_index(encode_free_index(index))
        assert len(restored) == 0 and restored.capacity == CAPACITY

    def test_truncated_blob_rejected(self):
        blob = encode_free_index(churned_index("tiered"))
        with pytest.raises(SnapshotError):
            decode_free_index(blob[: len(blob) // 2])

    def test_bit_flip_rejected(self):
        blob = bytearray(encode_free_index(churned_index("tiered")))
        blob[len(blob) // 2] ^= 0xFF
        with pytest.raises(SnapshotError):
            decode_free_index(bytes(blob))

    def test_bad_magic_rejected(self):
        blob = bytearray(encode_free_index(churned_index("tiered")))
        blob[:4] = b"XXXX"
        with pytest.raises(SnapshotError):
            decode_free_index(bytes(blob))


class TestJournalSnapshot:
    def make_journal(self):
        device = BlockDevice(scaled_disk(16 * MB))
        index = make_free_index(16 * MB, initially_free=False)
        return Journal(device, index, log_base=0, log_size=1 * MB,
                       commit_interval_ops=10_000), index

    def test_round_trip_and_verify(self):
        journal, _ = self.make_journal()
        journal.log_operation(frees=[Extent(2 * MB, 1 * MB)])
        journal.log_operation()
        blob = encode_journal(journal)
        other, _ = self.make_journal()
        state = restore_journal(other, blob)
        assert other.snapshot_state() == state == journal.snapshot_state()
        verify_journal(other, blob)

    def test_geometry_mismatch_rejected(self):
        journal, _ = self.make_journal()
        blob = encode_journal(journal)
        device = BlockDevice(scaled_disk(16 * MB))
        index = make_free_index(16 * MB, initially_free=False)
        other = Journal(device, index, log_base=0, log_size=2 * MB,
                        commit_interval_ops=4)
        with pytest.raises(SnapshotError):
            restore_journal(other, blob)

    def test_verify_detects_divergence(self):
        journal, _ = self.make_journal()
        blob = encode_journal(journal)
        journal.log_operation()
        with pytest.raises(SnapshotError):
            verify_journal(journal, blob)

    def test_torn_blob_rejected(self):
        journal, _ = self.make_journal()
        journal.log_operation(frees=[Extent(2 * MB, 1 * MB)])
        blob = encode_journal(journal)
        with pytest.raises(SnapshotError):
            decode_journal_state(blob[:-3])


def aged_fs(kind: str = "tiered", seed: int = 5) -> SimFilesystem:
    device = BlockDevice(scaled_disk(48 * MB))
    fs = SimFilesystem(device, FsConfig(index_kind=kind))
    rng = random.Random(seed)
    names = []
    for i in range(40):
        name = f"f{i}"
        fs.create(name)
        for _ in range(rng.randrange(1, 5)):
            fs.append(name, nbytes=rng.randrange(1, 5) * 64 * KB)
        names.append(name)
    for name in rng.sample(names, 12):
        fs.delete(name)
    return fs


class TestRebuild:
    @pytest.mark.parametrize("kind", INDEX_KINDS)
    def test_rebuild_matches_live_index(self, kind):
        fs = aged_fs(kind)
        rebuilt = rebuild_fs_free_index(fs)
        assert index_kind_of(rebuilt) == kind
        cross_check(rebuilt, fs.free_index)
        # ... including while frees are parked in the journal.
        assert fs.journal.pending_free_count >= 0
        fs.journal.commit()
        cross_check(rebuild_fs_free_index(fs), fs.free_index)

    def test_rebuild_detects_double_counted_extent(self):
        fs = aged_fs()
        # Corrupt the model: claim a free run is also file data.
        run = next(iter(fs.free_index))
        record = fs.table.lookup(fs.list_files()[0])
        record.extents.append(Extent(run.start, min(run.length, 4 * KB)))
        with pytest.raises(SnapshotError):
            rebuilt = rebuild_fs_free_index(fs)
            cross_check(rebuilt, fs.free_index)

    def test_cross_check_detects_drift(self):
        fs = aged_fs()
        rebuilt = rebuild_fs_free_index(fs)
        run = next(iter(rebuilt))
        rebuilt.remove(Extent(run.start, min(run.length, 1 * KB)))
        with pytest.raises(SnapshotError):
            cross_check(rebuilt, fs.free_index)


class TestCheckpointManager:
    def test_save_load_round_trip(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        manager.save({"a.bin": b"alpha"}, meta={"age": 1})
        ckpt = manager.save({"a.bin": b"beta", "b.bin": b"bravo"},
                            meta={"age": 2})
        latest = manager.load_latest()
        assert latest is not None
        assert latest.seq == ckpt.seq
        assert latest.meta == {"age": 2}
        assert latest.read("a.bin") == b"beta"
        assert sorted(latest.names()) == ["a.bin", "b.bin"]

    def test_empty_directory_loads_none(self, tmp_path):
        assert CheckpointManager(tmp_path / "new").load_latest() is None

    def test_prune_keeps_latest_two(self, tmp_path):
        manager = CheckpointManager(tmp_path, keep=2)
        for age in range(5):
            manager.save({"a.bin": bytes([age])}, meta={"age": age})
        seqs = [seq for seq, _ in manager._published()]
        assert len(seqs) == 2 and seqs[-1] == 5

    def test_torn_file_falls_back_to_previous(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        manager.save({"a.bin": b"good"}, meta={"age": 1})
        second = manager.save({"a.bin": b"newer"}, meta={"age": 2})
        (second.path / "a.bin").write_bytes(b"torn!")
        latest = manager.load_latest()
        assert latest is not None and latest.meta == {"age": 1}

    def test_missing_manifest_falls_back(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        manager.save({"a.bin": b"good"}, meta={"age": 1})
        second = manager.save({"a.bin": b"newer"}, meta={"age": 2})
        (second.path / "MANIFEST.NAME").unlink(missing_ok=True)
        (second.path / "MANIFEST.json").unlink()
        latest = manager.load_latest()
        assert latest is not None and latest.meta == {"age": 1}

    def test_everything_torn_loads_none(self, tmp_path):
        manager = CheckpointManager(tmp_path, keep=1)
        ckpt = manager.save({"a.bin": b"only"}, meta={})
        (ckpt.path / "a.bin").unlink()
        assert manager.load_latest() is None

    def test_rejects_path_like_names(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        with pytest.raises(ConfigError):
            manager.save({"../evil": b""})
        with pytest.raises(ConfigError):
            manager.save({"MANIFEST.json": b""})

    @pytest.mark.parametrize("scribble", [
        '"a string, not an object"',
        '{"version": 1, "seq": "x", "files": {}}',
        '{"version": 1, "seq": 2, "files": {"a.bin": "not-a-dict"}}',
        '{"version": 1, "seq": 2, "files": {"a.bin": {"bytes": "NaN"}}}',
        '{"version": 1, "seq": 2, "meta": [], "files": {}}',
    ])
    def test_misshapen_manifest_falls_back(self, tmp_path, scribble):
        """JSON that parses but has the wrong shape is torn state: the
        walk must skip it, not crash with a TypeError."""
        manager = CheckpointManager(tmp_path)
        manager.save({"a.bin": b"good"}, meta={"age": 1})
        second = manager.save({"a.bin": b"newer"}, meta={"age": 2})
        (second.path / "MANIFEST.json").write_text(scribble)
        latest = manager.load_latest()
        assert latest is not None and latest.meta == {"age": 1}

    def test_verified_blobs_are_cached(self, tmp_path):
        """load() verifies each file once; consumer reads must not
        re-read from disk (resume reads state.pkl right after load)."""
        manager = CheckpointManager(tmp_path)
        manager.save({"a.bin": b"payload"}, meta={})
        latest = manager.load_latest()
        (latest.path / "a.bin").unlink()
        assert latest.read("a.bin") == b"payload"

    def test_manifest_seq_must_match_directory_name(self, tmp_path):
        """A copied/renamed checkpoint directory must not verify: its
        manifest seq disagrees with the name load derives seq from."""
        import shutil

        manager = CheckpointManager(tmp_path)
        first = manager.save({"a.bin": b"one"}, meta={"age": 1})
        shutil.copytree(first.path, tmp_path / "ckpt-000009")
        with pytest.raises(SnapshotError, match="does not match"):
            manager.load(tmp_path / "ckpt-000009")
        # load_latest skips the impostor and mounts the real one.
        latest = manager.load_latest()
        assert latest is not None and latest.seq == first.seq


def payloads(age: int) -> dict[str, bytes]:
    """Checkpoint-shaped files: a large mostly-stable blob plus a
    small one, both varying with ``age``."""
    base = bytearray(bytes(range(256)) * 64)  # 16 KB
    base[age * 37: age * 37 + 4] = b"edit"
    return {"state.bin": bytes(base), "meta.bin": f"age={age}".encode()}


class TestDeltaChains:
    def chained(self, tmp_path, *, keep=2, full_interval=3):
        return CheckpointManager(tmp_path, keep=keep,
                                 full_interval=full_interval)

    def encodings(self, manager):
        """[(seq, parent_seq)] for every published checkpoint."""
        out = []
        for seq, path in manager._published():
            out.append((seq, manager._manifest_parent_seq(path)))
        return out

    def test_validation(self, tmp_path):
        with pytest.raises(ConfigError):
            CheckpointManager(tmp_path, keep=0)
        with pytest.raises(ConfigError):
            CheckpointManager(tmp_path, full_interval=0)
        with pytest.raises(ConfigError, match="keep must be >= 2"):
            CheckpointManager(tmp_path, keep=1, full_interval=2)

    def test_cadence_and_round_trip(self, tmp_path):
        """full_interval=3 publishes full, delta, delta, full, ... and
        every checkpoint reads back its exact content."""
        manager = self.chained(tmp_path, keep=10)
        for age in range(1, 8):
            manager.save(payloads(age), meta={"age": age})
        links = dict(self.encodings(manager))
        assert [links[seq] for seq in range(1, 8)] == \
            [None, 1, 2, None, 4, 5, None]
        for seq in range(1, 8):
            ckpt = manager.load(tmp_path / f"ckpt-{seq:06d}")
            assert ckpt.read("state.bin") == payloads(seq)["state.bin"]
            assert ckpt.read("meta.bin") == payloads(seq)["meta.bin"]

    def test_delta_entries_are_smaller(self, tmp_path):
        manager = self.chained(tmp_path)
        full = manager.save(payloads(1), meta={"age": 1})
        delta = manager.save(payloads(2), meta={"age": 2})
        assert delta.parent_seq == full.seq
        entry = delta.files["state.bin"]
        assert entry["encoding"] == "delta"
        assert entry["bytes"] < full.files["state.bin"]["bytes"]
        assert entry["content_bytes"] == len(payloads(2)["state.bin"])

    def test_fresh_manager_continues_chain(self, tmp_path):
        """A new process (no _last cache) deltas against what it loads."""
        self.chained(tmp_path).save(payloads(1), meta={"age": 1})
        second = self.chained(tmp_path).save(payloads(2), meta={"age": 2})
        assert second.parent_seq == 1

    def test_schema_change_cuts_chain(self, tmp_path):
        manager = self.chained(tmp_path)
        manager.save(payloads(1), meta={"schema": "v1"})
        ckpt = manager.save(payloads(2), meta={"schema": "v2"})
        assert ckpt.parent_seq is None

    def test_retention_keeps_live_chain_ancestors(self, tmp_path):
        """keep=2 must retain the full snapshots the retained delta
        heads replay through, even beyond the newest ``keep``."""
        manager = self.chained(tmp_path, keep=2, full_interval=3)
        for age in range(1, 8):
            manager.save(payloads(age), meta={"age": age})
        seqs = [seq for seq, _ in manager._published()]
        # Heads 6 (delta) and 7 (full); 6 needs 5 needs 4 (full).
        assert seqs == [4, 5, 6, 7]
        for seq in (6, 7):
            ckpt = manager.load(tmp_path / f"ckpt-{seq:06d}")
            assert ckpt.read("meta.bin") == payloads(seq)["meta.bin"]

    def test_torn_delta_falls_back_to_full(self, tmp_path):
        manager = self.chained(tmp_path, keep=4, full_interval=4)
        for age in range(1, 4):
            manager.save(payloads(age), meta={"age": age})
        (tmp_path / "ckpt-000003" / "state.bin").write_bytes(b"torn")
        latest = manager.load_latest()
        assert latest is not None and latest.meta == {"age": 2}

    def test_torn_full_breaks_dependent_deltas(self, tmp_path):
        """Tearing the chain's base must invalidate every delta that
        replays through it, not just the base itself."""
        manager = self.chained(tmp_path, keep=4, full_interval=4)
        for age in range(1, 4):
            manager.save(payloads(age), meta={"age": age})
        (tmp_path / "ckpt-000001" / "state.bin").write_bytes(b"torn")
        assert manager.load_latest() is None

    def test_save_after_torn_head_cuts_chain(self, tmp_path):
        """A save whose predecessor is torn must go full rather than
        delta against an older checkpoint (which would fork the chain)."""
        manager = self.chained(tmp_path, keep=4, full_interval=4)
        manager.save(payloads(1), meta={"age": 1})
        second = manager.save(payloads(2), meta={"age": 2})
        (second.path / "state.bin").write_bytes(b"torn")
        manager._last = None  # a fresh process would not have the cache
        third = manager.save(payloads(3), meta={"age": 3})
        assert third.parent_seq is None
        assert third.read("state.bin") == payloads(3)["state.bin"]

    def test_full_interval_one_never_deltas(self, tmp_path):
        manager = CheckpointManager(tmp_path, keep=3, full_interval=1)
        for age in range(1, 4):
            manager.save(payloads(age), meta={"age": age})
        assert all(link is None for _, link in self.encodings(manager))

    def test_version1_manifest_still_loads(self, tmp_path):
        """Pre-delta manifests (no parent_seq/encoding keys) are valid
        all-full checkpoints."""
        import json

        manager = CheckpointManager(tmp_path)
        ckpt = manager.save({"a.bin": b"legacy"}, meta={"age": 1})
        manifest = json.loads((ckpt.path / "MANIFEST.json").read_text())
        manifest["version"] = 1
        del manifest["parent_seq"]
        for info in manifest["files"].values():
            del info["encoding"]
        (ckpt.path / "MANIFEST.json").write_text(json.dumps(manifest))
        latest = manager.load_latest()
        assert latest is not None and latest.read("a.bin") == b"legacy"


class TestFsComponents:
    def test_filesystem_backend_has_one(self, file_store):
        assert [label for label, _ in fs_components(file_store)] == ["vol0"]

    def test_blob_backend_has_none(self, blob_store):
        assert fs_components(blob_store) == []

    def test_sharded_store_has_one_per_shard(self):
        from repro.backends.registry import build_store
        from repro.backends.spec import StoreSpec

        store = build_store(StoreSpec("filesystem", volume_bytes=96 * MB,
                                      shards=3))
        labels = [label for label, _ in fs_components(store)]
        assert labels == ["shard0", "shard1", "shard2"]
