"""Edge-case coverage: windows misuse, single-zone disks, misc paths."""

import pytest

from repro.analysis.compare import check_levels_off
from repro.backends.base import MeasurementWindows
from repro.disk.device import BlockDevice
from repro.disk.geometry import make_disk
from repro.disk.iostats import IoStats
from repro.errors import ConfigError
from repro.units import KB, MB


class TestIoStatsEdges:
    def test_end_unknown_window_raises(self):
        stats = IoStats()
        win = stats.start_window("w")
        stats.end_window(win)
        with pytest.raises(ValueError):
            stats.end_window(win)

    def test_closing_outer_window_closes_inner(self):
        stats = IoStats()
        outer = stats.start_window("outer")
        stats.start_window("inner")
        stats.end_window(outer)
        stats.record_cpu(1.0)
        assert outer.cpu_time_s == 0.0  # nothing open any more

    def test_snapshot_matches_totals(self):
        stats = IoStats()
        stats.record(is_write=True, nbytes=100, service_s=0.5, seeks=2)
        stats.record_cpu(0.25)
        snap = stats.snapshot()
        assert snap.write_bytes == 100
        assert snap.seeks == 2
        assert snap.total_time_s == pytest.approx(0.75)

    def test_zero_time_throughputs(self):
        snap = IoStats().snapshot()
        assert snap.read_throughput() == 0.0
        assert snap.write_throughput() == 0.0
        assert snap.throughput() == 0.0


class TestSingleZoneDisk:
    def test_nzones_one_uses_mean_rate(self):
        disk = make_disk(8 * MB, nzones=1, outer_rate=60 * MB,
                         inner_rate=30 * MB)
        assert disk.zones[0].rate == pytest.approx(45 * MB)

    def test_nzones_zero_rejected(self):
        with pytest.raises(ConfigError):
            make_disk(8 * MB, nzones=0)


class TestMeasurementWindows:
    def test_aggregates_across_devices(self, file_store):
        windows = MeasurementWindows.open(file_store, "w")
        file_store.put("a", size=256 * KB)
        combined = windows.close()
        # Object-device writes plus metadata-db writes both counted.
        assert combined.write_bytes >= 256 * KB
        assert combined.total_time_s > 0
        assert combined.name == "w"


class TestShapeCheckEdges:
    def test_flat_series_levels_off_trivially(self):
        series = [(float(x), 2.0) for x in range(5)]
        assert check_levels_off("flat", series).passed


class TestDeviceSequentialWindowConfig:
    def test_custom_window(self):
        from repro.disk.geometry import scaled_disk

        dev = BlockDevice(scaled_disk(8 * MB), sequential_window=0)
        dev.read(1 * MB, 4 * KB)
        dev.read(1 * MB + 8 * KB, 4 * KB)  # 4 KB gap now counts as seek
        assert dev.stats.seeks == 2


class TestRepositoryAcrossBackends:
    @pytest.mark.parametrize("fixture_name", [
        "file_store", "blob_store",
    ])
    def test_repository_wraps_any_backend(self, request, fixture_name):
        from repro.core.repository import LargeObjectRepository

        store = request.getfixturevalue(fixture_name)
        repo = LargeObjectRepository(store)
        repo.put("x", size=128 * KB)
        repo.replace("x", size=128 * KB)
        assert repo.storage_age == pytest.approx(1.0)
        repo.delete("x")
        # An empty volume has no live bytes, so age reads as zero.
        assert repo.storage_age == 0.0
        assert repo.keys() == []


class TestPageTypeEnum:
    def test_distinct_values(self):
        from repro.db.page import PageType

        values = {member.value for member in PageType}
        assert len(values) == len(PageType)
        assert PageType.LOB_DATA in PageType
