"""Tests for the Extent value type and coalescing."""

import pytest

from repro.alloc.extent import Extent, coalesce, total_length
from repro.errors import ConfigError


class TestExtentBasics:
    def test_end(self):
        assert Extent(10, 5).end == 15

    def test_rejects_negative_start(self):
        with pytest.raises(ConfigError):
            Extent(-1, 5)

    def test_rejects_nonpositive_length(self):
        with pytest.raises(ConfigError):
            Extent(0, 0)

    def test_ordering_by_start(self):
        assert sorted([Extent(10, 1), Extent(0, 1)])[0].start == 0

    def test_contains(self):
        e = Extent(10, 5)
        assert e.contains(10)
        assert e.contains(14)
        assert not e.contains(15)
        assert not e.contains(9)

    def test_contains_extent(self):
        assert Extent(0, 10).contains_extent(Extent(2, 3))
        assert not Extent(0, 10).contains_extent(Extent(8, 3))


class TestOverlapAdjacency:
    def test_overlaps(self):
        assert Extent(0, 10).overlaps(Extent(5, 10))
        assert not Extent(0, 10).overlaps(Extent(10, 5))

    def test_adjacent(self):
        assert Extent(0, 10).adjacent_to(Extent(10, 5))
        assert Extent(10, 5).adjacent_to(Extent(0, 10))
        assert not Extent(0, 10).adjacent_to(Extent(11, 5))

    def test_merge_adjacent(self):
        assert Extent(0, 10).merge(Extent(10, 5)) == Extent(0, 15)

    def test_merge_disjoint_rejected(self):
        with pytest.raises(ConfigError):
            Extent(0, 10).merge(Extent(20, 5))


class TestSplitTake:
    def test_split_at(self):
        left, right = Extent(0, 10).split_at(4)
        assert left == Extent(0, 4)
        assert right == Extent(4, 6)

    def test_split_at_boundary_rejected(self):
        with pytest.raises(ConfigError):
            Extent(0, 10).split_at(0)
        with pytest.raises(ConfigError):
            Extent(0, 10).split_at(10)

    def test_take_front(self):
        taken, rest = Extent(100, 10).take_front(4)
        assert taken == Extent(100, 4)
        assert rest == Extent(104, 6)

    def test_take_front_all(self):
        taken, rest = Extent(100, 10).take_front(10)
        assert taken == Extent(100, 10)
        assert rest is None

    def test_take_back(self):
        taken, rest = Extent(100, 10).take_back(4)
        assert taken == Extent(106, 4)
        assert rest == Extent(100, 6)

    def test_take_too_much_rejected(self):
        with pytest.raises(ConfigError):
            Extent(0, 10).take_front(11)


class TestCoalesce:
    def test_empty(self):
        assert coalesce([]) == []

    def test_merges_touching(self):
        assert coalesce([Extent(0, 10), Extent(10, 5)]) == [Extent(0, 15)]

    def test_keeps_gaps(self):
        out = coalesce([Extent(20, 5), Extent(0, 10)])
        assert out == [Extent(0, 10), Extent(20, 5)]

    def test_unsorted_input(self):
        out = coalesce([Extent(10, 5), Extent(0, 10), Extent(15, 1)])
        assert out == [Extent(0, 16)]

    def test_fragment_count_semantics(self):
        # A contiguous object has one fragment (Figure 2's caption).
        contiguous = [Extent(0, 64), Extent(64, 64), Extent(128, 64)]
        assert len(coalesce(contiguous)) == 1
        scattered = [Extent(0, 64), Extent(128, 64), Extent(256, 64)]
        assert len(coalesce(scattered)) == 3

    def test_total_length(self):
        assert total_length([Extent(0, 10), Extent(100, 5)]) == 15


class TestSlots:
    def test_extent_is_slotted(self):
        ext = Extent(0, 10)
        assert not hasattr(ext, "__dict__")
        assert set(Extent.__slots__) == {"start", "length"}
        with pytest.raises(AttributeError):
            object.__setattr__(ext, "color", "red")

    def test_extent_remains_frozen(self):
        ext = Extent(0, 10)
        with pytest.raises(AttributeError):
            ext.start = 5

    def test_extent_remains_hashable(self):
        ext = Extent(3, 7)
        assert hash(ext) == hash(Extent(3, 7))
        assert {ext: "a"}[Extent(3, 7)] == "a"
        assert len({Extent(0, 1), Extent(0, 1), Extent(1, 1)}) == 2

    def test_extent_pickles(self):
        import pickle

        ext = Extent(12, 34)
        assert pickle.loads(pickle.dumps(ext)) == ext
