"""Checkpoint/resume of scenario runs: killed and resumed == uninterrupted.

The scenario engine's whole mutable state — tenant RNGs, key ownership,
the TTL heap, interval histograms, the arrival-wave cursor — pickles
inside the run checkpoint (schema ``run-checkpoint/7``).  The
acceptance bar mirrors ``test_checkpoint_resume``: a scenario run
killed right after a mid-run checkpoint and resumed must reproduce the
uninterrupted run record *exactly*, including every per-tenant latency
summary, on both the event-queue and plain stores.
"""

import pytest

from repro.backends.spec import StoreSpec
from repro.core.experiment import (
    ExperimentConfig,
    ExperimentRunner,
    run_experiment,
)
from repro.errors import ConfigError
from repro.scenario.spec import ScenarioSpec
from repro.units import MB

AGES = (0.0, 1.0, 2.0)


def config_for(store_kind: str, scenario_text: str,
               seed: int = 11) -> ExperimentConfig:
    specs = {
        "event": StoreSpec.parse(
            "lfs:shards=2,overlap=true,queue=event,volume=48M"),
        "plain": StoreSpec("filesystem", volume_bytes=48 * MB),
    }
    return ExperimentConfig(
        store=specs[store_kind],
        scenario=ScenarioSpec.parse(scenario_text),
        occupancy=0.4,
        ages=AGES,
        reads_per_sample=8,
        seed=seed,
    )


class _Killed(Exception):
    """Stands in for SIGKILL right after a checkpoint lands."""


def run_interrupted(config: ExperimentConfig, directory,
                    kill_after_age: float) -> None:
    def killer(phase: str, value: float) -> None:
        if phase == "checkpoint" and value == kill_after_age:
            raise _Killed

    runner = ExperimentRunner(config, progress=killer,
                              checkpoint_dir=directory)
    with pytest.raises(_Killed):
        runner.run()


class TestScenarioResumeIdentity:
    @pytest.mark.parametrize("store_kind,scenario_text", [
        ("event", "cdn_churn:tenants=3,seed=5"),
        ("plain", "log_ingest:tenants=2,seed=5"),
    ])
    @pytest.mark.parametrize("kill_after_age", [0.0, 1.0])
    def test_killed_and_resumed_equals_uninterrupted(
            self, tmp_path, store_kind, scenario_text, kill_after_age):
        config = config_for(store_kind, scenario_text)
        baseline = ExperimentRunner(config).run()
        run_interrupted(config, tmp_path, kill_after_age)
        resumed = ExperimentRunner(config, checkpoint_dir=tmp_path,
                                   resume=True).run()
        # Full record equality — including scenario_lat/tenant_lat on
        # every sample, so the per-tenant histograms survived the kill.
        assert resumed.to_dict() == baseline.to_dict()
        aged = [s for s in resumed.samples if s.age > 0]
        assert aged and all(s.tenant_lat for s in aged)

    def test_completed_run_resumes_to_identical_record(self, tmp_path):
        config = config_for("event", "cdn_churn:tenants=3,seed=5")
        first = run_experiment(config, checkpoint_dir=tmp_path)
        again = run_experiment(config, checkpoint_dir=tmp_path,
                               resume=True)
        assert again.to_dict() == first.to_dict()

    def test_resume_refuses_a_different_scenario(self, tmp_path):
        """A checkpoint written under one scenario never seeds another:
        the scenario text is part of the config echo, so resuming with
        a different spec is refused outright."""
        run_interrupted(config_for("event", "cdn_churn:tenants=3,seed=5"),
                        tmp_path, 1.0)
        other = config_for("event", "cdn_churn:tenants=3,seed=6")
        with pytest.raises(ConfigError, match="different configuration"):
            ExperimentRunner(other, checkpoint_dir=tmp_path,
                             resume=True).run()
