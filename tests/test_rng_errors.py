"""Tests for seeded RNG substreams and the exception hierarchy."""

import pytest

from repro import errors
from repro.rng import make_rng, substream


class TestRng:
    def test_substream_deterministic(self):
        a = [substream(7, "sizes").random() for _ in range(3)]
        b = [substream(7, "sizes").random() for _ in range(3)]
        assert a == b

    def test_substreams_decorrelated(self):
        assert substream(7, "sizes").random() != \
            substream(7, "ops").random()

    def test_different_seeds_differ(self):
        assert substream(1, "x").random() != substream(2, "x").random()

    def test_make_rng_seeded(self):
        assert make_rng(5).random() == make_rng(5).random()


class TestErrorHierarchy:
    def test_everything_is_repro_error(self):
        for name in ("ConfigError", "StorageFullError", "AllocationError",
                     "FsError", "DbError", "CorruptionError",
                     "ObjectNotFoundError", "CrashPoint"):
            cls = getattr(errors, name)
            assert issubclass(cls, errors.ReproError)

    def test_allocation_is_storage_full(self):
        assert issubclass(errors.AllocationError, errors.StorageFullError)

    def test_not_found_errors_are_key_errors(self):
        # Callers can use dict-style except KeyError at the boundary.
        for name in ("FileNotFoundFsError", "BlobNotFoundError",
                     "RowNotFoundError", "ObjectNotFoundError"):
            assert issubclass(getattr(errors, name), KeyError)

    def test_catchable_at_boundary(self):
        with pytest.raises(errors.ReproError):
            raise errors.AllocationError("full")
