"""Property suite for the overlap model and shard rebalancing.

Two families:

* :func:`repro.disk.schedule.round_makespan` is held to its envelope on
  arbitrary lane-time vectors — ``max(lanes) <= makespan <= sum(lanes)``
  for every parallelism cap, with exact equality at ``parallelism=1``
  (the serial model) and ``parallelism >= lanes`` (pure critical path)
  — and the :class:`ShardScheduler`'s windows/totals are held to agree
  with round-by-round accumulation.
* Rebalancing conserves accounting: per-shard IoStats bytes/ops are
  neither lost nor double-counted (untouched shards' devices don't
  move, touched shards only grow by the migration I/O charged through
  the normal submit path), composite logical state — key order, object
  count, live bytes, readability — is invariant, and the overlapped
  wall time of the migration round stays inside the makespan envelope
  of its lane deltas.
* The event-queue model (:mod:`repro.disk.events`) reduces to this
  round model: with closed arrivals and no cross-round queueing, the
  :class:`~repro.disk.events.EventScheduler` wall equals
  :func:`round_makespan` **to the float** for every lane vector and
  parallelism cap (``parallelism=1`` equals the serial sum exactly),
  and its sojourn percentiles are monotone in the quantile.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backends.registry import build_store
from repro.backends.spec import StoreSpec
from repro.disk.schedule import ShardScheduler, round_makespan
from repro.units import KB, MB

lane_vectors = st.lists(
    st.floats(min_value=0.0, max_value=1e4, allow_nan=False,
              allow_infinity=False),
    min_size=0, max_size=24,
)

#: Relative slack for float-sum comparisons (subset sums of lanes can
#: differ from the straight total in the last few ulps).
REL_EPS = 1e-9


@given(lanes=lane_vectors, parallelism=st.integers(0, 32))
@settings(max_examples=200, deadline=None)
def test_makespan_envelope(lanes, parallelism):
    busy = [t for t in lanes if t > 0.0]
    wall = round_makespan(lanes, parallelism)
    if not busy:
        assert wall == 0.0
        return
    lo, hi = max(busy), sum(busy)
    assert wall >= lo - REL_EPS * max(1.0, lo)
    assert wall <= hi + REL_EPS * max(1.0, hi)


@given(lanes=lane_vectors)
@settings(max_examples=120, deadline=None)
def test_parallelism_one_is_the_serial_model(lanes):
    busy = sorted((t for t in lanes if t > 0.0), reverse=True)
    assert round_makespan(lanes, 1) == sum(busy)


@given(lanes=lane_vectors, extra=st.integers(0, 8))
@settings(max_examples=120, deadline=None)
def test_enough_workers_is_the_critical_path(lanes, extra):
    busy = [t for t in lanes if t > 0.0]
    workers = len(busy) + extra
    expected = max(busy) if busy else 0.0
    assert round_makespan(lanes, workers) == expected
    # parallelism=0 means one worker per lane: same thing.
    assert round_makespan(lanes, 0) == expected


@given(rounds=st.lists(lane_vectors, min_size=0, max_size=10),
       parallelism=st.integers(0, 4),
       overhead=st.floats(min_value=0.0, max_value=0.5))
@settings(max_examples=100, deadline=None)
def test_scheduler_accumulates_rounds_and_windows(rounds, parallelism,
                                                  overhead):
    sched = ShardScheduler(parallelism=parallelism,
                           dispatch_overhead_s=overhead)
    win = sched.start_window("phase")
    expected_wall = 0.0
    expected_lanes = 0.0
    busy_rounds = 0
    for lanes in rounds:
        wall = sched.record_round(lanes)
        span = round_makespan(lanes, parallelism)
        if span > 0.0:
            busy_rounds += 1
            expected_wall += span + overhead
            expected_lanes += sum(t for t in lanes if t > 0.0)
            assert wall == span + overhead
        else:
            # Idle rounds cost nothing, not even dispatch overhead.
            assert wall == 0.0
    sched.end_window(win)
    assert sched.rounds == busy_rounds == win.rounds
    assert math.isclose(sched.wall_time_s, expected_wall,
                        rel_tol=REL_EPS, abs_tol=1e-12)
    assert math.isclose(win.wall_time_s, expected_wall,
                        rel_tol=REL_EPS, abs_tol=1e-12)
    assert math.isclose(sched.lane_time_s, expected_lanes,
                        rel_tol=REL_EPS, abs_tol=1e-12)
    # The cumulative totals honour the same envelope as each round.
    assert sched.wall_time_s <= sched.lane_time_s \
        + busy_rounds * overhead + REL_EPS * max(1.0, sched.lane_time_s)


# ----------------------------------------------------------------------
# Rebalancing conservation
# ----------------------------------------------------------------------
SHARDS = 4


def build_sharded(overlap: bool = True):
    spec = StoreSpec("lfs", volume_bytes=96 * MB, shards=SHARDS,
                     overlap=overlap)
    return build_store(spec)


def device_totals(store):
    """Per-shard (read_bytes, write_bytes, requests, clock) tuples."""
    totals = []
    for shard in store.shards:
        r = w = q = 0
        c = 0.0
        for dev in shard.devices():
            r += dev.stats.read_bytes
            w += dev.stats.write_bytes
            q += dev.stats.requests
            c += dev.clock_s
        totals.append((r, w, q, c))
    return totals


@given(
    sizes=st.lists(st.integers(min_value=1, max_value=64),  # 16 KB units
                   min_size=4, max_size=28),
    mode=st.sampled_from(["even", "placement"]),
)
@settings(max_examples=25, deadline=None)
def test_rebalance_conserves_iostats_and_state(sizes, mode):
    store = build_sharded()
    for i, units in enumerate(sizes):
        store.put(f"obj-{i}", size=units * 16 * KB)
    keys_before = store.keys()
    stats_before = store.store_stats()
    totals_before = device_totals(store)
    wall_before = store.scheduler.wall_time_s
    lanes_before = store.scheduler.lane_time_s

    report = store.rebalance(mode=mode)

    # Logical state is invariant: same keys in the same order, same
    # object count and live bytes, every object still readable.
    assert store.keys() == keys_before
    stats_after = store.store_stats()
    assert stats_after.objects == stats_before.objects
    assert stats_after.live_bytes == stats_before.live_bytes
    for i, units in enumerate(sizes):
        assert store.meta(f"obj-{i}").size == units * 16 * KB

    # Migration accounting: the report and StoreStats agree, and bytes
    # are the sum of the moved objects' sizes (counted exactly once).
    assert stats_after.migrated_objects == report.moved_objects
    assert stats_after.migrated_bytes == report.moved_bytes
    assert report.moved_bytes <= sum(sizes) * 16 * KB

    # Per-shard IoStats conservation: counters only ever grow, and a
    # shard no migration touched has byte-identical device stats.
    totals_after = device_totals(store)
    touched = set()
    for index, (before, after) in enumerate(zip(totals_before,
                                                totals_after)):
        rb, wb, qb, cb = before
        ra, wa, qa, ca = after
        assert ra >= rb and wa >= wb and qa >= qb and ca >= cb - 1e-12
        if (ra, wa, qa) != (rb, wb, qb):
            touched.add(index)
    if report.moved_objects == 0:
        assert not touched
    # The migration reads exactly the moved bytes from source shards
    # (whole-object copies; metadata reads ride the same submit path).
    read_delta = sum(a[0] - b[0]
                     for a, b in zip(totals_after, totals_before))
    write_delta = sum(a[1] - b[1]
                      for a, b in zip(totals_after, totals_before))
    assert read_delta >= report.moved_bytes
    assert write_delta >= report.moved_bytes

    # Overlap accounting: the migration's wall time stays inside the
    # makespan envelope of the summed lane deltas.
    wall_delta = store.scheduler.wall_time_s - wall_before
    lane_delta = store.scheduler.lane_time_s - lanes_before
    clock_delta = sum(a[3] - b[3]
                      for a, b in zip(totals_after, totals_before))
    assert wall_delta <= lane_delta + REL_EPS * max(1.0, lane_delta)
    assert math.isclose(lane_delta, clock_delta,
                        rel_tol=1e-9, abs_tol=1e-12)


@given(sizes=st.lists(st.integers(min_value=1, max_value=64),
                      min_size=6, max_size=24))
@settings(max_examples=25, deadline=None)
def test_even_rebalance_never_widens_the_spread(sizes):
    store = build_sharded(overlap=False)
    for i, units in enumerate(sizes):
        store.put(f"obj-{i}", size=units * 16 * KB)

    def live_spread():
        live = [s.live_bytes for s in store.shard_stats()]
        return max(live) - min(live)

    before = live_spread()
    store.rebalance(mode="even")
    assert live_spread() <= before


# ----------------------------------------------------------------------
# Event-model reduction (PR 7): zero queueing == round makespan
# ----------------------------------------------------------------------
@given(rounds=st.lists(lane_vectors, min_size=0, max_size=8),
       parallelism=st.integers(0, 32),
       overhead=st.floats(min_value=0.0, max_value=0.5))
@settings(max_examples=150, deadline=None)
def test_event_model_reduces_to_round_makespan(rounds, parallelism,
                                               overhead):
    """Closed arrivals, unbounded depth: the event simulator IS the
    round model — equal wall per round and cumulatively, to the float,
    for every parallelism cap."""
    from repro.disk.events import EventScheduler

    event = EventScheduler(24, parallelism=parallelism,
                           dispatch_overhead_s=overhead)
    base = ShardScheduler(parallelism=parallelism,
                          dispatch_overhead_s=overhead)
    for lanes in rounds:
        event_wall = event.record_round(lanes, indices=range(len(lanes)))
        assert event_wall == base.record_round(lanes)
        assert event.wall_time_s == base.wall_time_s
    assert event.rounds == base.rounds
    assert event.lane_time_s == base.lane_time_s


@given(lanes=lane_vectors)
@settings(max_examples=100, deadline=None)
def test_event_model_serializes_like_parallelism_one(lanes):
    from repro.disk.events import EventScheduler

    event = EventScheduler(24, parallelism=1)
    event.record_round(lanes, indices=range(len(lanes)))
    assert event.wall_time_s == round_makespan(lanes, 1)
    assert event.wall_time_s == sum(
        sorted((t for t in lanes if t > 0.0), reverse=True))


@given(rounds=st.lists(lane_vectors, min_size=1, max_size=6),
       parallelism=st.integers(0, 8))
@settings(max_examples=100, deadline=None)
def test_event_model_percentiles_are_monotone(rounds, parallelism):
    from repro.disk.events import EventScheduler

    event = EventScheduler(24, parallelism=parallelism)
    for lanes in rounds:
        event.record_round(lanes, indices=range(len(lanes)))
    if event.latency.count == 0:
        return
    quantiles = [event.latency.percentile(q)
                 for q in (0, 25, 50, 75, 95, 99, 100)]
    assert quantiles == sorted(quantiles)
    assert quantiles[-1] <= event.latency.max_s
